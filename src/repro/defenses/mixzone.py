"""Mix Zones (Beresford & Stajano).

"Mix Zones [30] uses the idea of silent zones, where users keep silent
by not sending any requests in order to mix the identities of people
within this zone."  A device entering a zone stops transmitting and
exits under a fresh pseudonym; an attacker watching the borders cannot
tell which exit matches which entry when several devices are inside.

The paper notes "this approach may incur extensive inconvenience" —
our evaluation quantifies it as the fraction of time devices spend
mute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.geometry.circle import Circle
from repro.geometry.point import Point


@dataclass(frozen=True)
class MixZone:
    """A circular silent zone."""

    center: Point
    radius_m: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.radius_m <= 0.0:
            raise ValueError(f"zone radius must be > 0, got {self.radius_m}")

    def contains(self, point: Point) -> bool:
        return self.center.distance_to(point) <= self.radius_m

    @property
    def disc(self) -> Circle:
        return Circle(self.center, self.radius_m)


@dataclass
class MixZoneMap:
    """The deployed set of mix zones on a campus."""

    zones: List[MixZone] = field(default_factory=list)

    def add_zone(self, zone: MixZone) -> None:
        self.zones.append(zone)

    def zone_at(self, point: Point) -> Optional[MixZone]:
        """The zone covering ``point``, or None."""
        for zone in self.zones:
            if zone.contains(point):
                return zone
        return None

    def in_zone(self, point: Point) -> bool:
        return self.zone_at(point) is not None

    def coverage_fraction(self, width_m: float, height_m: float,
                          grid: int = 50) -> float:
        """Fraction of the campus rectangle inside some zone.

        A coarse grid estimate — used to report the "inconvenience"
        cost of a mix-zone deployment.
        """
        if grid < 2:
            raise ValueError(f"grid must be >= 2, got {grid}")
        covered = 0
        total = 0
        for i in range(grid):
            for j in range(grid):
                point = Point(width_m * (i + 0.5) / grid,
                              height_m * (j + 0.5) / grid)
                total += 1
                if self.in_zone(point):
                    covered += 1
        return covered / total
