"""Probe hygiene: closing the implicit-identifier side channel.

Pang et al. [13] — cited by the paper as the reason MAC pseudonyms
fail — showed that "implicit identifiers such as network names in
probing traffic may break those pseudonyms".  Probe hygiene is the
countermeasure: never send directed probe requests (discover networks
passively from beacons or via broadcast probes only), so rotating MACs
leave nothing to link.

The trade-off is real: hidden-SSID networks cannot be discovered
without directed probes, and scans get slower.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from repro.net80211.frames import Dot11Frame
from repro.net80211.station import MobileStation, ScanProfile


@dataclass(frozen=True)
class ProbeHygiene:
    """Configuration of the probe-suppression defense.

    ``suppress_directed`` removes directed (SSID-bearing) probes from
    scan bursts; ``broadcast_only_interval_s`` can additionally slow the
    broadcast scan cadence to reduce the probing footprint.
    """

    suppress_directed: bool = True
    broadcast_only_interval_s: float = 0.0  # 0 = keep profile cadence

    def apply_to_profile(self, profile: ScanProfile) -> ScanProfile:
        """A hygienic copy of a scan profile."""
        updated = profile
        if self.suppress_directed and profile.directed_probes:
            updated = replace(updated, directed_probes=False)
        if self.broadcast_only_interval_s > 0.0:
            updated = replace(
                updated, scan_interval_s=max(
                    updated.scan_interval_s,
                    self.broadcast_only_interval_s))
        return updated

    def apply_to_station(self, station: MobileStation) -> None:
        """Apply the defense to a live station, in place."""
        station.profile = self.apply_to_profile(station.profile)

    def filter_burst(self, frames: List[Dot11Frame]) -> List[Dot11Frame]:
        """Drop directed probes from an already-generated burst.

        Useful when the defense is deployed as a driver shim below an
        OS that still produces directed probes.
        """
        if not self.suppress_directed:
            return list(frames)
        return [frame for frame in frames
                if not frame.is_probe_request or frame.ssid.is_wildcard]
