"""Track-analysis tests: metrics and smoothing."""

import numpy as np
import pytest

from repro.analysis.tracking import (
    average_track_error,
    exponential_smoothing,
    moving_average,
    track_length_m,
)
from repro.geometry.point import Point


def noisy_line_track(n=40, noise=5.0, seed=0):
    """Truth: x = t along y = 0; track adds Gaussian noise."""
    rng = np.random.default_rng(seed)
    track = []
    for t in range(n):
        track.append((float(t),
                      Point(t + rng.normal(0, noise),
                            rng.normal(0, noise))))
    return track


def line_truth(timestamp):
    return Point(timestamp, 0.0)


class TestAverageTrackError:
    def test_perfect_track(self):
        track = [(float(t), Point(float(t), 0.0)) for t in range(10)]
        assert average_track_error(track, line_truth) == 0.0

    def test_constant_offset(self):
        track = [(float(t), Point(float(t), 3.0)) for t in range(10)]
        assert average_track_error(track, line_truth) == pytest.approx(3.0)

    def test_missing_truth_skipped(self):
        track = [(0.0, Point(0.0, 4.0)), (1.0, Point(1.0, 0.0))]

        def truth(timestamp):
            return line_truth(timestamp) if timestamp > 0.5 else None

        assert average_track_error(track, truth) == 0.0

    def test_no_truth_raises(self):
        with pytest.raises(ValueError):
            average_track_error([(0.0, Point(0, 0))], lambda t: None)


class TestSmoothing:
    def test_exponential_reduces_noise(self):
        track = noisy_line_track()
        raw = average_track_error(track, line_truth)
        smoothed = average_track_error(
            exponential_smoothing(track, alpha=0.4), line_truth)
        assert smoothed < raw

    def test_moving_average_reduces_noise(self):
        track = noisy_line_track()
        raw = average_track_error(track, line_truth)
        smoothed = average_track_error(moving_average(track, window=5),
                                       line_truth)
        assert smoothed < raw

    def test_alpha_one_is_identity(self):
        track = noisy_line_track(n=10)
        assert exponential_smoothing(track, alpha=1.0) == track

    def test_window_one_is_identity(self):
        track = noisy_line_track(n=10)
        averaged = moving_average(track, window=1)
        for (t1, p1), (t2, p2) in zip(track, averaged):
            assert t1 == t2
            assert p1.is_close(p2)

    def test_timestamps_preserved(self):
        track = noisy_line_track(n=15)
        for method in (lambda t: exponential_smoothing(t, 0.3),
                       lambda t: moving_average(t, 5)):
            out = method(track)
            assert [t for t, _ in out] == [t for t, _ in track]

    def test_validation(self):
        track = noisy_line_track(n=5)
        with pytest.raises(ValueError):
            exponential_smoothing(track, alpha=0.0)
        with pytest.raises(ValueError):
            moving_average(track, window=4)  # even
        with pytest.raises(ValueError):
            moving_average(track, window=0)


class TestTrackLength:
    def test_straight_line(self):
        track = [(0.0, Point(0, 0)), (1.0, Point(3, 4)),
                 (2.0, Point(6, 8))]
        assert track_length_m(track) == pytest.approx(10.0)

    def test_single_point(self):
        assert track_length_m([(0.0, Point(1, 1))]) == 0.0

    def test_smoothing_shortens_path(self):
        # Noise inflates path length; smoothing brings it back down.
        track = noisy_line_track()
        raw_length = track_length_m(track)
        smooth_length = track_length_m(moving_average(track, 5))
        assert smooth_length < raw_length
