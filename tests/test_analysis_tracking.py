"""Track-analysis tests: metrics, smoothing, and the tracker edge
cases the streaming engine exercises."""

import numpy as np
import pytest

from repro.analysis.tracking import (
    average_track_error,
    exponential_smoothing,
    moving_average,
    track_length_m,
)
from repro.geometry.point import Point
from repro.localization.base import LocalizationEstimate
from repro.net80211.frames import probe_request
from repro.net80211.mac import MacAddress
from repro.net80211.ssid import Ssid
from repro.sniffer.tracker import DeviceTracker, PseudonymLinker


def noisy_line_track(n=40, noise=5.0, seed=0):
    """Truth: x = t along y = 0; track adds Gaussian noise."""
    rng = np.random.default_rng(seed)
    track = []
    for t in range(n):
        track.append((float(t),
                      Point(t + rng.normal(0, noise),
                            rng.normal(0, noise))))
    return track


def line_truth(timestamp):
    return Point(timestamp, 0.0)


class TestAverageTrackError:
    def test_perfect_track(self):
        track = [(float(t), Point(float(t), 0.0)) for t in range(10)]
        assert average_track_error(track, line_truth) == 0.0

    def test_constant_offset(self):
        track = [(float(t), Point(float(t), 3.0)) for t in range(10)]
        assert average_track_error(track, line_truth) == pytest.approx(3.0)

    def test_missing_truth_skipped(self):
        track = [(0.0, Point(0.0, 4.0)), (1.0, Point(1.0, 0.0))]

        def truth(timestamp):
            return line_truth(timestamp) if timestamp > 0.5 else None

        assert average_track_error(track, truth) == 0.0

    def test_no_truth_raises(self):
        with pytest.raises(ValueError):
            average_track_error([(0.0, Point(0, 0))], lambda t: None)


class TestSmoothing:
    def test_exponential_reduces_noise(self):
        track = noisy_line_track()
        raw = average_track_error(track, line_truth)
        smoothed = average_track_error(
            exponential_smoothing(track, alpha=0.4), line_truth)
        assert smoothed < raw

    def test_moving_average_reduces_noise(self):
        track = noisy_line_track()
        raw = average_track_error(track, line_truth)
        smoothed = average_track_error(moving_average(track, window=5),
                                       line_truth)
        assert smoothed < raw

    def test_alpha_one_is_identity(self):
        track = noisy_line_track(n=10)
        assert exponential_smoothing(track, alpha=1.0) == track

    def test_window_one_is_identity(self):
        track = noisy_line_track(n=10)
        averaged = moving_average(track, window=1)
        for (t1, p1), (t2, p2) in zip(track, averaged):
            assert t1 == t2
            assert p1.is_close(p2)

    def test_timestamps_preserved(self):
        track = noisy_line_track(n=15)
        for method in (lambda t: exponential_smoothing(t, 0.3),
                       lambda t: moving_average(t, 5)):
            out = method(track)
            assert [t for t, _ in out] == [t for t, _ in track]

    def test_validation(self):
        track = noisy_line_track(n=5)
        with pytest.raises(ValueError):
            exponential_smoothing(track, alpha=0.0)
        with pytest.raises(ValueError):
            moving_average(track, window=4)  # even
        with pytest.raises(ValueError):
            moving_average(track, window=0)


def estimate_at(x, y):
    return LocalizationEstimate(position=Point(x, y), algorithm="test")


class TestDeviceTrackerEdgeCases:
    """Edge cases the streaming engine's sink stage must respect."""

    MOBILE = MacAddress.parse("02:aa:bb:00:00:01")

    def test_out_of_order_timestamp_rejected(self):
        tracker = DeviceTracker()
        tracker.record(self.MOBILE, 10.0, estimate_at(0.0, 0.0))
        with pytest.raises(ValueError, match="non-decreasing"):
            tracker.record(self.MOBILE, 9.0, estimate_at(1.0, 1.0))
        # The failed append leaves the track intact.
        assert len(tracker.track_of(self.MOBILE)) == 1

    def test_equal_timestamps_allowed(self):
        tracker = DeviceTracker()
        tracker.record(self.MOBILE, 10.0, estimate_at(0.0, 0.0))
        tracker.record(self.MOBILE, 10.0, estimate_at(1.0, 1.0))
        assert len(tracker.track_of(self.MOBILE)) == 2

    def test_per_device_monotonicity_is_independent(self):
        other = MacAddress.parse("02:aa:bb:00:00:02")
        tracker = DeviceTracker()
        tracker.record(self.MOBILE, 10.0, estimate_at(0.0, 0.0))
        # A different device may start earlier: no cross-device order.
        tracker.record(other, 1.0, estimate_at(2.0, 2.0))
        assert tracker.latest(other).timestamp == 1.0


class TestPseudonymLinkerMidStream:
    """A device rotating its MAC mid-stream collapses to one identity."""

    OLD = MacAddress.parse("02:11:22:33:44:55")  # locally administered
    NEW = MacAddress.parse("02:66:77:88:99:aa")

    def _probe(self, mac, t, ssid):
        return probe_request(mac, 6, t, ssid=Ssid(ssid))

    def test_two_macs_collapse_into_one_group(self):
        linker = PseudonymLinker()
        # Before rotation: the old pseudonym leaks its PNL.
        linker.ingest(self._probe(self.OLD, 1.0, "home-wifi"))
        linker.ingest(self._probe(self.OLD, 2.0, "office-net"))
        groups_before = linker.linked_groups()
        assert [self.OLD] in groups_before
        # Mid-stream rotation: the new MAC leaks the same PNL.
        linker.ingest(self._probe(self.NEW, 50.0, "office-net"))
        linker.ingest(self._probe(self.NEW, 51.0, "home-wifi"))
        groups_after = linker.linked_groups()
        assert [self.OLD, self.NEW] in groups_after
        # Both MACs resolve to the same logical identity.
        assert (linker.logical_identity(self.OLD)
                == linker.logical_identity(self.NEW))

    def test_partial_fingerprint_does_not_collapse(self):
        linker = PseudonymLinker()
        linker.ingest(self._probe(self.OLD, 1.0, "home-wifi"))
        linker.ingest(self._probe(self.OLD, 2.0, "office-net"))
        # The new MAC only ever leaks one of the two SSIDs.
        linker.ingest(self._probe(self.NEW, 50.0, "home-wifi"))
        assert (linker.logical_identity(self.OLD)
                != linker.logical_identity(self.NEW))


class TestTrackLength:
    def test_straight_line(self):
        track = [(0.0, Point(0, 0)), (1.0, Point(3, 4)),
                 (2.0, Point(6, 8))]
        assert track_length_m(track) == pytest.approx(10.0)

    def test_single_point(self):
        assert track_length_m([(0.0, Point(1, 1))]) == 0.0

    def test_smoothing_shortens_path(self):
        # Noise inflates path length; smoothing brings it back down.
        track = noisy_line_track()
        raw_length = track_length_m(track)
        smooth_length = track_length_m(moving_average(track, 5))
        assert smooth_length < raw_length
