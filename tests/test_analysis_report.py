"""Markdown report-rendering tests."""

import pytest

from repro.analysis.experiments import TestCase, run_localization_experiment
from repro.analysis.report import render_markdown_report
from repro.geometry.point import Point
from repro.localization import CentroidLocalizer, MLoc


@pytest.fixture
def reports(square_db):
    points = [Point(50.0, 50.0), Point(60.0, 40.0), Point(30.0, 70.0)]
    cases = [TestCase.of(square_db.observable_from(p), p) for p in points]
    return run_localization_experiment(
        {"m-loc": MLoc(square_db),
         "centroid": CentroidLocalizer(square_db)},
        cases)


class TestMarkdownReport:
    def test_structure(self, reports):
        document = render_markdown_report(reports, title="Test run")
        assert document.startswith("# Test run")
        assert "| algorithm |" in document
        assert "## Error vs. minimum communicable APs" in document
        assert "## Intersected area / coverage probability" in document

    def test_all_algorithms_listed(self, reports):
        document = render_markdown_report(reports)
        assert "| m-loc |" in document
        assert "| centroid |" in document

    def test_paper_means_shown(self, reports):
        document = render_markdown_report(
            reports, paper_means={"m-loc": 9.41})
        assert "9.41" in document

    def test_coverage_section_only_for_disc_based(self, reports):
        document = render_markdown_report(reports)
        area_section = document.split(
            "## Intersected area / coverage probability")[1]
        assert "m-loc" in area_section
        assert "centroid" not in area_section

    def test_empty_report_row(self):
        from repro.analysis.experiments import AlgorithmReport

        document = render_markdown_report(
            {"empty": AlgorithmReport(name="empty")})
        assert "| empty | 0 | - | - | - | - |" in document

    def test_k_values_configurable(self, reports):
        document = render_markdown_report(reports, k_values=(2, 3))
        assert "err@k≥2" in document
        assert "err@k≥3" in document
        assert "err@k≥12" not in document


class TestCliMarkdown:
    def test_simulate_writes_markdown(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "report.md"
        code = main(["simulate", "--seed", "5", "--cases", "15",
                     "--markdown", str(output)])
        assert code == 0
        assert output.exists()
        text = output.read_text()
        assert "M-Loc" in text
        assert "9.41" in text  # the paper column
