"""Shared test helpers (importable as ``tests.helpers``)."""

from repro.geometry.point import Point
from repro.knowledge.apdb import ApRecord
from repro.net80211.mac import MacAddress
from repro.net80211.ssid import Ssid


def make_record(index: int, x: float, y: float,
                max_range_m=None, channel=6) -> ApRecord:
    """A deterministic AP record for hand-built databases."""
    return ApRecord(
        bssid=MacAddress(0x001B63000000 + index),
        ssid=Ssid(f"test-ap-{index}"),
        location=Point(x, y),
        max_range_m=max_range_m,
        channel=channel,
    )
