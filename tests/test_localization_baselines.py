"""Centroid and Nearest-AP baseline tests, including the Fig 4 bias demo."""

import pytest

from repro.geometry.point import Point
from repro.knowledge.apdb import ApDatabase
from repro.localization.centroid import CentroidLocalizer
from repro.localization.mloc import MLoc
from repro.localization.nearest import NearestApLocalizer
from repro.net80211.mac import MacAddress

from tests.helpers import make_record


class TestCentroid:
    def test_mean_of_locations(self, square_db):
        estimate = CentroidLocalizer(square_db).locate(square_db.bssids)
        assert estimate.position == Point(50.0, 50.0)
        assert estimate.region is None
        assert estimate.area_m2 == 0.0

    def test_never_covers(self, square_db):
        estimate = CentroidLocalizer(square_db).locate(square_db.bssids)
        assert not estimate.covers(Point(50.0, 50.0))

    def test_unknown_only_returns_none(self, square_db):
        assert CentroidLocalizer(square_db).locate(
            {MacAddress(0xDEAD)}) is None

    def test_works_without_ranges(self, square_db):
        estimate = CentroidLocalizer(square_db.without_ranges()).locate(
            square_db.bssids)
        assert estimate.position == Point(50.0, 50.0)

    def test_figure4_bias(self):
        """The paper's Fig 4: clustered extra APs drag the centroid away
        while disc-intersection only gets tighter."""
        truth = Point(50.0, 50.0)
        # 5 APs spread around the truth...
        records = [
            make_record(0, 10.0, 50.0, 90.0),
            make_record(1, 90.0, 50.0, 90.0),
            make_record(2, 50.0, 10.0, 90.0),
            make_record(3, 50.0, 90.0, 90.0),
            make_record(4, 50.0, 50.0, 90.0),
        ]
        db_uniform = ApDatabase(records)
        # ... plus 10 APs clustered far to one side (still covering
        # the truth thanks to big radii).
        clustered = records + [
            make_record(5 + i, 110.0 + i, 110.0, 120.0) for i in range(10)
        ]
        db_biased = ApDatabase(clustered)

        centroid_uniform = CentroidLocalizer(db_uniform).locate(
            db_uniform.bssids).error_to(truth)
        centroid_biased = CentroidLocalizer(db_biased).locate(
            db_biased.bssids).error_to(truth)
        assert centroid_biased > centroid_uniform + 10.0  # bias hurts

        mloc_uniform = MLoc(db_uniform).locate(
            db_uniform.bssids).error_to(truth)
        mloc_biased = MLoc(db_biased).locate(
            db_biased.bssids).error_to(truth)
        # Disc intersection cannot get *worse* in area with more APs,
        # and here its error stays far below the biased centroid's.
        assert mloc_biased < centroid_biased

        area_uniform = MLoc(db_uniform).locate(db_uniform.bssids).area_m2
        area_biased = MLoc(db_biased).locate(db_biased.bssids).area_m2
        assert area_biased <= area_uniform + 1e-6


class TestNearestAp:
    def test_picks_smallest_radius(self):
        db = ApDatabase([make_record(0, 0.0, 0.0, 100.0),
                         make_record(1, 50.0, 0.0, 30.0)])
        estimate = NearestApLocalizer(db).locate(db.bssids)
        assert estimate.position == Point(50.0, 0.0)
        assert estimate.area_m2 > 0.0  # the chosen AP's disc

    def test_without_ranges_uses_first_stable(self, square_db):
        db = square_db.without_ranges()
        first = NearestApLocalizer(db).locate(db.bssids)
        second = NearestApLocalizer(db).locate(db.bssids)
        assert first.position == second.position
        assert first.region is None

    def test_unknown_only_returns_none(self, square_db):
        assert NearestApLocalizer(square_db).locate(
            {MacAddress(0xDEAD)}) is None

    def test_equivalent_to_mloc_at_k1(self):
        # "when a mobile device can only communicate with one AP ...
        # the disc-intersection approach is essentially reduced to the
        # nearest AP approach."
        db = ApDatabase([make_record(0, 30.0, 40.0, 50.0)])
        nearest = NearestApLocalizer(db).locate(db.bssids)
        mloc = MLoc(db).locate(db.bssids)
        assert nearest.position == mloc.position

    def test_disc_intersection_beats_nearest_for_k_over_1(self, square_db):
        # Ablation claim: for k > 1 the intersected region is strictly
        # smaller than any single coverage disc.
        mloc = MLoc(square_db).locate(square_db.bssids)
        nearest = NearestApLocalizer(square_db).locate(square_db.bssids)
        assert mloc.area_m2 < nearest.area_m2
