"""Observation-store tests: Γ extraction, windows, probing stats."""

import pytest

from repro.net80211.frames import (
    Dot11Frame,
    FrameType,
    beacon,
    probe_request,
    probe_response,
)
from repro.net80211.mac import BROADCAST_MAC, MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid
from repro.sniffer.observation import ObservationStore

STA = MacAddress.parse("00:1b:63:11:22:33")
STA2 = MacAddress.parse("00:1b:63:99:88:77")
AP1 = MacAddress.parse("00:15:6d:00:00:01")
AP2 = MacAddress.parse("00:15:6d:00:00:02")
AP3 = MacAddress.parse("00:15:6d:00:00:03")


def rx(frame, t=None):
    return ReceivedFrame(frame=frame, rssi_dbm=-70.0, snr_db=20.0,
                         rx_channel=frame.channel,
                         rx_timestamp=frame.timestamp if t is None else t)


def response(ap, sta, t):
    return rx(probe_response(ap, sta, channel=6, timestamp=t,
                             ssid=Ssid("n")))


class TestIngestion:
    def test_probe_response_builds_gamma(self):
        store = ObservationStore()
        store.ingest(response(AP1, STA, 1.0))
        store.ingest(response(AP2, STA, 2.0))
        assert store.gamma(STA) == {AP1, AP2}

    def test_probe_request_marks_probing(self):
        store = ObservationStore()
        store.ingest(rx(probe_request(STA, channel=6, timestamp=1.0)))
        assert STA in store.probing_mobiles
        assert STA in store.seen_mobiles
        assert store.gamma(STA) == set()  # a probe alone proves nothing

    def test_beacon_registers_ap_only(self):
        store = ObservationStore()
        store.ingest(rx(beacon(AP1, channel=6, timestamp=1.0,
                               ssid=Ssid("x"))))
        assert AP1 in store.observed_aps
        assert store.seen_mobiles == set()

    def test_data_frame_builds_gamma(self):
        store = ObservationStore()
        data = Dot11Frame(frame_type=FrameType.DATA, source=STA,
                          destination=AP1, channel=6, timestamp=1.0,
                          bssid=AP1)
        store.ingest(rx(data))
        assert store.gamma(STA) == {AP1}
        assert STA not in store.probing_mobiles  # data is not probing

    def test_broadcast_destination_ignored(self):
        store = ObservationStore()
        store.ingest(rx(probe_response(AP1, BROADCAST_MAC, channel=6,
                                       timestamp=1.0, ssid=Ssid("n"))))
        assert store.all_observations() == {}

    def test_frame_count(self):
        store = ObservationStore()
        store.ingest(response(AP1, STA, 1.0))
        store.ingest(rx(probe_request(STA, channel=6, timestamp=2.0)))
        assert store.frame_count == 2


class TestWindows:
    def test_gamma_at_time_filters_by_window(self):
        store = ObservationStore(window_s=30.0)
        store.ingest(response(AP1, STA, 10.0))
        store.ingest(response(AP2, STA, 500.0))
        assert store.gamma(STA, at_time=10.0) == {AP1}
        assert store.gamma(STA, at_time=500.0) == {AP2}
        assert store.gamma(STA) == {AP1, AP2}

    def test_windows_split_by_time(self):
        store = ObservationStore(window_s=30.0)
        store.ingest(response(AP1, STA, 5.0))
        store.ingest(response(AP2, STA, 6.0))
        store.ingest(response(AP3, STA, 100.0))
        windows = store.windows()
        assert len(windows) == 2
        gammas = [set(w.observed) for w in windows]
        assert {AP1, AP2} in gammas
        assert {AP3} in gammas

    def test_windows_split_by_mobile(self):
        store = ObservationStore(window_s=30.0)
        store.ingest(response(AP1, STA, 5.0))
        store.ingest(response(AP2, STA2, 6.0))
        assert len(store.windows()) == 2

    def test_corpus_shape(self):
        store = ObservationStore(window_s=30.0)
        store.ingest(response(AP1, STA, 5.0))
        store.ingest(response(AP2, STA, 6.0))
        assert store.corpus() == [{AP1, AP2}]

    def test_window_validation(self):
        with pytest.raises(ValueError):
            ObservationStore(window_s=0.0)


class TestProbingStats:
    def test_probing_fraction(self):
        store = ObservationStore()
        store.ingest(rx(probe_request(STA, channel=6, timestamp=1.0)))
        store.ingest(response(AP1, STA2, 2.0))  # seen but not probing
        assert store.probing_fraction() == pytest.approx(0.5)

    def test_probing_fraction_empty(self):
        assert ObservationStore().probing_fraction() == 0.0

    def test_unknown_mobile_gamma_empty(self):
        assert ObservationStore().gamma(STA) == set()
