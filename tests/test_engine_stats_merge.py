"""EngineStats.merge algebra: associative, commutative, identity.

The sharded service folds per-shard snapshots in whatever order the
shards answer, so the merge must not care about fold order.  Counter
fields are exact integers; ``stage_seconds`` are floats, where addition
is only approximately associative — the properties compare them with
``pytest.approx``.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineStats

counts = st.integers(min_value=0, max_value=10**9)
seconds = st.floats(min_value=0.0, max_value=1e6,
                    allow_nan=False, allow_infinity=False)
stage_names = st.sampled_from(["ingest", "flush", "locate", "fit"])


@st.composite
def engine_stats(draw):
    return EngineStats(
        frames_ingested=draw(counts),
        evidence_events=draw(counts),
        probe_requests=draw(counts),
        devices_seen=draw(counts),
        batches_flushed=draw(counts),
        estimates_emitted=draw(counts),
        unlocatable=draw(counts),
        cache_enabled=draw(st.booleans()),
        cache_hits=draw(counts),
        cache_misses=draw(counts),
        cache_entries=draw(counts),
        refits=draw(counts),
        last_fit_iterations=draw(counts),
        stage_seconds=draw(st.dictionaries(stage_names, seconds,
                                           max_size=4)),
        retries=draw(counts),
        sink_failures=draw(counts),
        quarantined=draw(counts),
        degraded=draw(counts),
    )


def assert_equivalent(left: EngineStats, right: EngineStats) -> None:
    """Exact on counters, approx on the float stage accumulators."""
    left_d = dataclasses.asdict(left)
    right_d = dataclasses.asdict(right)
    left_stages = left_d.pop("stage_seconds")
    right_stages = right_d.pop("stage_seconds")
    assert left_d == right_d
    assert left_stages == pytest.approx(right_stages)


class TestMergeAlgebra:
    @settings(max_examples=200, deadline=None)
    @given(engine_stats(), engine_stats(), engine_stats())
    def test_associative(self, a, b, c):
        assert_equivalent(a.merge(b.merge(c)), a.merge(b).merge(c))

    @settings(max_examples=200, deadline=None)
    @given(engine_stats(), engine_stats())
    def test_commutative(self, a, b):
        assert_equivalent(a.merge(b), b.merge(a))

    @settings(max_examples=100, deadline=None)
    @given(engine_stats())
    def test_identity_element(self, a):
        identity = EngineStats(cache_enabled=False)
        assert_equivalent(identity.merge(a), a)
        assert_equivalent(a.merge(identity), a)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(engine_stats(), max_size=6))
    def test_merge_all_is_order_independent(self, snapshots):
        forward = EngineStats.merge_all(snapshots)
        backward = EngineStats.merge_all(list(reversed(snapshots)))
        assert_equivalent(forward, backward)

    def test_merge_all_of_nothing_is_the_identity(self):
        assert EngineStats.merge_all([]) == EngineStats(
            cache_enabled=False)


class TestMergeSemantics:
    def test_counters_sum_and_iterations_max(self):
        a = EngineStats(frames_ingested=3, last_fit_iterations=7,
                        stage_seconds={"flush": 1.0})
        b = EngineStats(frames_ingested=4, last_fit_iterations=5,
                        stage_seconds={"flush": 0.5, "fit": 2.0})
        merged = a.merge(b)
        assert merged.frames_ingested == 7
        assert merged.last_fit_iterations == 7
        assert merged.stage_seconds == pytest.approx(
            {"flush": 1.5, "fit": 2.0})

    def test_cache_enabled_ors(self):
        off = EngineStats(cache_enabled=False)
        on = EngineStats(cache_enabled=True)
        assert off.merge(off).cache_enabled is False
        assert off.merge(on).cache_enabled is True

    def test_originals_are_untouched(self):
        a = EngineStats(stage_seconds={"flush": 1.0})
        b = EngineStats(stage_seconds={"flush": 2.0})
        a.merge(b)
        assert a.stage_seconds == {"flush": 1.0}
        assert b.stage_seconds == {"flush": 2.0}
