"""Columnar capture store: round trips, blocks, and corruption."""

import struct

import numpy as np
import pytest

from repro.capture import (
    CAPTURE_DTYPE,
    ColumnarReader,
    ColumnarWriter,
    FrameBatch,
    sniff_columnar,
)
from repro.capture.columnar import FOOTER_MAGIC, MAGIC
from repro.capture.records import CaptureError, NO_BSSID
from repro.net80211.frames import (
    Dot11Frame,
    FrameType,
    beacon,
    deauthentication,
    probe_request,
    probe_response,
)
from repro.net80211.mac import BROADCAST_MAC, MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid

STA = MacAddress.parse("00:1b:63:11:22:33")
AP = MacAddress.parse("00:15:6d:44:55:66")


def make_records(count, t0=0.0, step=0.5):
    """A varied, deterministic stream of ``count`` captures."""
    frames = [
        probe_request(STA, channel=6, timestamp=0.0, ssid=Ssid("home")),
        probe_response(AP, STA, channel=6, timestamp=0.0,
                       ssid=Ssid("CampusNet")),
        beacon(AP, channel=11, timestamp=0.0, ssid=Ssid("CampusNet")),
        Dot11Frame(frame_type=FrameType.DATA, source=STA, destination=AP,
                   channel=6, timestamp=0.0, ssid=Ssid(""), bssid=AP),
        deauthentication(AP, STA, AP, channel=6, timestamp=0.0),
    ]
    records = []
    for i in range(count):
        template = frames[i % len(frames)]
        ts = t0 + i * step
        frame = Dot11Frame(
            frame_type=template.frame_type, source=template.source,
            destination=template.destination, channel=template.channel,
            timestamp=ts, ssid=template.ssid, bssid=template.bssid,
            sequence=i % 4096)
        records.append(ReceivedFrame(
            frame=frame, rssi_dbm=-60.0 - (i % 30), snr_db=25.0 - (i % 7),
            rx_channel=frame.channel, rx_timestamp=ts))
    return records


def write_columnar(path, records, **options):
    with ColumnarWriter(path, **options) as writer:
        for record in records:
            writer.write(record)


class TestRoundTrip:
    def test_exact_roundtrip(self, tmp_path):
        path = tmp_path / "capture.cap"
        records = make_records(57)
        write_columnar(path, records)
        assert list(ColumnarReader(path)) == records

    def test_block_boundaries(self, tmp_path):
        """Records spanning many tiny blocks come back complete."""
        path = tmp_path / "capture.cap"
        records = make_records(100)
        write_columnar(path, records, block_records=7)
        reader = ColumnarReader(path)
        assert list(reader) == records
        assert reader.info()["blocks"] == (100 + 6) // 7

    def test_unsorted_input_sorted_within_blocks(self, tmp_path):
        """Out-of-order writes are time-sorted inside each block."""
        path = tmp_path / "capture.cap"
        records = make_records(40)
        shuffled = records[::2] + records[1::2]
        write_columnar(path, shuffled, block_records=10)
        reader = ColumnarReader(path)
        recovered = list(reader)
        assert sorted(r.rx_timestamp for r in recovered) == sorted(
            r.rx_timestamp for r in records)
        for start in range(0, 40, 10):
            block = [r.rx_timestamp for r in recovered[start:start + 10]]
            assert block == sorted(block)
        assert not reader.info()["globally_sorted"]

    def test_batch_iteration_matches_record_iteration(self, tmp_path):
        path = tmp_path / "capture.cap"
        records = make_records(64)
        write_columnar(path, records, block_records=16)
        reader = ColumnarReader(path)
        batched = [frame for batch in reader.iter_batches(batch_records=9)
                   for frame in batch]
        assert batched == records

    def test_no_bssid_sentinel(self, tmp_path):
        path = tmp_path / "capture.cap"
        frame = probe_request(STA, channel=6, timestamp=1.0,
                              ssid=Ssid("x"))
        assert frame.bssid is None
        write_columnar(path, [ReceivedFrame(frame, -70.0, 20.0, 6, 1.0)])
        reader = ColumnarReader(path)
        batch = next(iter(reader.iter_batches()))
        assert batch.records["bssid"][0] == np.uint64(NO_BSSID)
        assert batch.frame_at(0).frame.bssid is None

    def test_aux_overflow_unicode_ssid_and_elements(self, tmp_path):
        """Edge-case SSIDs and element dicts ride in the aux blob."""
        path = tmp_path / "capture.cap"
        long_ssid = Ssid("café-" + "x" * 26)  # exactly 32 UTF-8 bytes
        frame = Dot11Frame(
            frame_type=FrameType.BEACON, source=AP,
            destination=BROADCAST_MAC, channel=11, timestamp=2.0,
            ssid=long_ssid, bssid=AP,
            elements={"vendor": "acme", "country": "US"})
        record = ReceivedFrame(frame, -55.0, 22.0, 11, 2.0)
        write_columnar(path, [record])
        (recovered,) = list(ColumnarReader(path))
        assert recovered == record
        assert recovered.frame.ssid == long_ssid
        assert recovered.frame.elements == frame.elements

    def test_float_fields_lossless(self, tmp_path):
        path = tmp_path / "capture.cap"
        ts = 1234567.123456789
        frame = probe_request(STA, channel=6, timestamp=ts, ssid=Ssid("a"))
        record = ReceivedFrame(frame, rssi_dbm=-67.8125, snr_db=19.375,
                               rx_channel=6, rx_timestamp=ts + 1e-9)
        write_columnar(path, [record])
        (recovered,) = list(ColumnarReader(path))
        assert recovered.rx_timestamp == record.rx_timestamp
        assert recovered.rssi_dbm == record.rssi_dbm
        assert recovered.frame.timestamp == ts

    def test_time_windowed_batches(self, tmp_path):
        path = tmp_path / "capture.cap"
        records = make_records(100, step=1.0)
        write_columnar(path, records, block_records=10)
        reader = ColumnarReader(path)
        window = [frame for batch in
                  reader.iter_batches(start_ts=25.0, end_ts=40.0)
                  for frame in batch]
        assert window == [r for r in records
                          if 25.0 <= r.rx_timestamp <= 40.0]

    def test_sniff(self, tmp_path):
        path = tmp_path / "capture.cap"
        write_columnar(path, make_records(3))
        assert sniff_columnar(path)
        text = tmp_path / "capture.jsonl"
        text.write_text('{"capture_format": 1}\n')
        assert not sniff_columnar(text)
        with pytest.raises(OSError):
            sniff_columnar(tmp_path / "missing.cap")


class TestCorruption:
    def _written(self, tmp_path, count=20):
        path = tmp_path / "capture.cap"
        write_columnar(path, make_records(count), block_records=8)
        return path

    def test_bad_magic(self, tmp_path):
        path = self._written(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[:8] = b"NOTMRDCP"
        path.write_bytes(bytes(raw))
        with pytest.raises(CaptureError):
            ColumnarReader(path)

    def test_truncated_file(self, tmp_path):
        path = self._written(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CaptureError):
            ColumnarReader(path)

    def test_corrupt_footer_json(self, tmp_path):
        path = self._written(tmp_path)
        raw = bytearray(path.read_bytes())
        footer_len = struct.unpack(
            "<Q", raw[-16:-8])[0]
        assert raw[-8:] == FOOTER_MAGIC
        start = len(raw) - 16 - footer_len
        raw[start: start + 4] = b"\x00\x00\x00\x00"
        path.write_bytes(bytes(raw))
        with pytest.raises(CaptureError):
            ColumnarReader(path)

    def test_block_out_of_bounds(self, tmp_path):
        """Structural corruption raises even for a lenient reader."""
        path = self._written(tmp_path)
        raw = bytearray(path.read_bytes())
        footer_len = struct.unpack("<Q", raw[-16:-8])[0]
        start = len(raw) - 16 - footer_len
        import json as _json
        footer = _json.loads(bytes(raw[start: start + footer_len]))
        footer["blocks"][0]["offset"] = 10 ** 9
        encoded = _json.dumps(footer).encode("utf-8")
        body = bytes(raw[:start])
        path.write_bytes(body + encoded
                         + struct.pack("<Q", len(encoded)) + FOOTER_MAGIC)
        with pytest.raises(CaptureError):
            ColumnarReader(path, strict=False)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.cap"
        path.write_bytes(b"")
        with pytest.raises(CaptureError):
            ColumnarReader(path)

    def test_lenient_skips_bad_rows_not_structure(self, tmp_path):
        """A row with an unknown frame-type code is skipped leniently."""
        path = self._written(tmp_path, count=10)
        reader = ColumnarReader(path)
        entry = reader.blocks[0]
        raw = bytearray(path.read_bytes())
        offset = entry["offset"]
        raw[offset] = 0xEE  # clobber first row's kind code
        reader.close()
        path.write_bytes(bytes(raw))
        with pytest.raises(CaptureError):
            list(ColumnarReader(path, strict=True))
        skipped = []
        lenient = ColumnarReader(
            path, strict=False,
            on_skip=lambda index, reason: skipped.append((index, reason)))
        assert len(list(lenient)) == 9
        assert len(skipped) == 1

    def test_writer_rejects_bad_block_size(self, tmp_path):
        with pytest.raises(ValueError):
            ColumnarWriter(tmp_path / "capture.cap", block_records=0)


class TestFrameBatch:
    def test_filter_device(self, tmp_path):
        path = tmp_path / "capture.cap"
        records = make_records(30)
        write_columnar(path, records)
        reader = ColumnarReader(path)
        (batch,) = list(reader.iter_batches())
        only_sta = batch.filter_device(STA.value)
        expected = [r for r in records
                    if STA in (r.frame.source, r.frame.destination,
                               r.frame.bssid)]
        assert list(only_sta) == expected

    def test_time_accessors(self, tmp_path):
        path = tmp_path / "capture.cap"
        records = make_records(12, t0=5.0)
        write_columnar(path, records)
        (batch,) = list(ColumnarReader(path).iter_batches())
        assert batch.t_min == 5.0
        assert batch.t_max == records[-1].rx_timestamp
        assert len(batch) == 12

    def test_capture_dtype_is_packed(self):
        assert CAPTURE_DTYPE.itemsize == 121

    def test_empty_batch(self):
        batch = FrameBatch(np.empty(0, dtype=CAPTURE_DTYPE), b"",
                           frame_types=())
        assert len(batch) == 0
        assert list(batch) == []
