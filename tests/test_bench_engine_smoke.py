"""Tier-1 smoke for the engine throughput bench (the --frames 200 run).

Catches regressions in the acceptance property — with a duplicate-heavy
stream, cache-on estimates/sec must beat cache-off on the same input —
without the full bench suite.  Runs the bench script the same way an
operator would, as a standalone process.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH = REPO_ROOT / "benchmarks" / "bench_engine_throughput.py"


def test_bench_engine_throughput_smoke(tmp_path):
    out_path = tmp_path / "engine_throughput.json"
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    result = subprocess.run(
        [sys.executable, str(BENCH), "--frames", "200",
         "--json", str(out_path)],
        capture_output=True, text=True, env=env, timeout=120)
    assert result.returncode == 0, result.stderr
    assert "speedup" in result.stdout

    report = json.loads(out_path.read_text())
    assert report["bench"] == "engine_throughput"
    assert report["config"]["duplicate_gamma_fraction"] >= 0.5
    on, off = report["cache_on"], report["cache_off"]
    # Same input, same estimates — memoization changes speed only.
    assert on["estimates_emitted"] == off["estimates_emitted"]
    assert on["cache_hit_rate"] > 0.0
    # The acceptance property: cache-on strictly faster.
    assert (on["wall_estimates_per_sec"]
            > off["wall_estimates_per_sec"])
    assert report["speedup"] > 1.0
