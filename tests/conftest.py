"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.knowledge.apdb import ApDatabase

from tests.helpers import make_record


@pytest.fixture
def rng():
    """A deterministic generator; tests needing their own seed make one."""
    return np.random.default_rng(12345)


@pytest.fixture
def square_db():
    """Four APs on a 100 m square, each with 80 m range.

    Their coverage discs all contain the square's center (50, 50), so a
    device there is communicable with all four.
    """
    return ApDatabase([
        make_record(0, 0.0, 0.0, 80.0),
        make_record(1, 100.0, 0.0, 80.0),
        make_record(2, 100.0, 100.0, 80.0),
        make_record(3, 0.0, 100.0, 80.0),
    ])
