"""Local tangent-plane tests."""

import pytest
from hypothesis import given, strategies as st

from repro.geo.distance import haversine_distance
from repro.geo.enu import LocalTangentPlane
from repro.geo.wgs84 import GeodeticCoordinate

#: UMass Lowell north campus — the paper's sniffer location.
UML = GeodeticCoordinate(42.6555, -71.3262, 30.0)

small = st.floats(min_value=-2000.0, max_value=2000.0,
                  allow_nan=False, allow_infinity=False)


class TestLocalTangentPlane:
    def test_origin_maps_to_zero(self):
        plane = LocalTangentPlane(UML)
        east, north, up = plane.to_enu(UML)
        assert east == pytest.approx(0.0, abs=1e-9)
        assert north == pytest.approx(0.0, abs=1e-9)
        assert up == pytest.approx(0.0, abs=1e-9)

    def test_north_displacement(self):
        plane = LocalTangentPlane(UML)
        # ~111 m per 0.001 degree of latitude.
        north_point = GeodeticCoordinate(UML.latitude_deg + 0.001,
                                         UML.longitude_deg,
                                         UML.altitude_m)
        east, north, _ = plane.to_enu(north_point)
        assert north == pytest.approx(111.0, rel=0.01)
        assert abs(east) < 0.5

    def test_east_displacement(self):
        plane = LocalTangentPlane(UML)
        east_point = GeodeticCoordinate(UML.latitude_deg,
                                        UML.longitude_deg + 0.001,
                                        UML.altitude_m)
        east, north, _ = plane.to_enu(east_point)
        # Scaled by cos(latitude) at 42.65°N: ~81.7 m.
        assert east == pytest.approx(81.7, rel=0.02)
        assert abs(north) < 0.5

    def test_planar_distance_matches_haversine(self):
        plane = LocalTangentPlane(UML)
        other = GeodeticCoordinate(42.6601, -71.3200, 30.0)
        planar = plane.to_point(other).norm()
        great_circle = haversine_distance(UML, other)
        assert planar == pytest.approx(great_circle, rel=0.01)

    @given(small, small)
    def test_roundtrip_through_plane(self, east, north):
        plane = LocalTangentPlane(UML)
        coordinate = plane.from_enu(east, north, 0.0)
        east2, north2, up2 = plane.to_enu(coordinate)
        assert east2 == pytest.approx(east, abs=1e-6)
        assert north2 == pytest.approx(north, abs=1e-6)
        assert up2 == pytest.approx(0.0, abs=1e-6)

    def test_point_roundtrip(self):
        from repro.geometry.point import Point

        plane = LocalTangentPlane(UML)
        point = Point(250.0, -120.0)
        recovered = plane.to_point(plane.from_point(point))
        assert recovered.x == pytest.approx(point.x, abs=1e-6)
        assert recovered.y == pytest.approx(point.y, abs=1e-6)
