"""Codec registry: sniffing, open/make dispatch, custom codecs, shims."""

import warnings

import pytest

from repro.capture import (
    CaptureCodec,
    ColumnarReader,
    ColumnarWriter,
    JsonlReader,
    JsonlWriter,
    capture_info,
    codec_names,
    get_codec,
    make_capture_writer,
    open_capture,
    register_codec,
    sniff_format,
)
from repro.capture.records import CaptureError
from repro.capture.registry import FALLBACK_FORMAT, _CODECS
from repro.net80211.frames import probe_request
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid

STA = MacAddress.parse("00:1b:63:11:22:33")


def make_records(count):
    return [
        ReceivedFrame(
            frame=probe_request(STA, channel=6, timestamp=float(i),
                                ssid=Ssid("home")),
            rssi_dbm=-70.0, snr_db=20.0, rx_channel=6,
            rx_timestamp=float(i))
        for i in range(count)
    ]


def write(path, fmt, records):
    with make_capture_writer(path, format=fmt) as writer:
        for record in records:
            writer.write(record)


class TestSniffing:
    def test_builtin_codecs_registered(self):
        assert {"jsonl", "columnar"} <= set(codec_names())

    def test_sniff_both_formats(self, tmp_path):
        records = make_records(5)
        jsonl, columnar = tmp_path / "a.jsonl", tmp_path / "b.cap"
        write(jsonl, "jsonl", records)
        write(columnar, "columnar", records)
        assert sniff_format(jsonl) == "jsonl"
        assert sniff_format(columnar) == "columnar"

    def test_garbage_falls_back_to_jsonl(self, tmp_path):
        """Unrecognized bytes sniff as the lenient fallback codec."""
        path = tmp_path / "garbage.bin"
        path.write_bytes(b"not a capture at all\n")
        assert sniff_format(path) == FALLBACK_FORMAT

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            sniff_format(tmp_path / "missing")


class TestOpenCapture:
    def test_open_dispatches_on_content(self, tmp_path):
        records = make_records(7)
        jsonl, columnar = tmp_path / "a.jsonl", tmp_path / "b.cap"
        write(jsonl, "jsonl", records)
        write(columnar, "columnar", records)
        opened_jsonl = open_capture(jsonl)
        opened_columnar = open_capture(columnar)
        assert isinstance(opened_jsonl, JsonlReader)
        assert isinstance(opened_columnar, ColumnarReader)
        assert list(opened_jsonl) == records
        assert list(opened_columnar) == records

    def test_explicit_format_overrides_sniff(self, tmp_path):
        path = tmp_path / "a.weird"
        write(path, "jsonl", make_records(3))
        reader = open_capture(path, format="jsonl")
        assert isinstance(reader, JsonlReader)

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "a.jsonl"
        write(path, "jsonl", make_records(1))
        with pytest.raises(ValueError, match="unknown capture format"):
            open_capture(path, format="pcapng")
        with pytest.raises(ValueError, match="unknown capture format"):
            make_capture_writer(tmp_path / "b", format="pcapng")

    def test_reader_options_forwarded(self, tmp_path):
        path = tmp_path / "a.cap"
        write(path, "columnar", make_records(4))
        reader = open_capture(path, device=str(STA))
        assert len(list(reader)) == 4  # STA is the source of every frame

    def test_capture_info(self, tmp_path):
        records = make_records(6)
        jsonl, columnar = tmp_path / "a.jsonl", tmp_path / "b.cap"
        write(jsonl, "jsonl", records)
        write(columnar, "columnar", records)
        info_j = capture_info(jsonl)
        info_c = capture_info(columnar)
        assert info_j["format"] == "jsonl"
        assert info_c["format"] == "columnar"
        assert info_j["records"] == info_c["records"] == 6


class TestMakeWriter:
    def test_default_format_is_columnar(self, tmp_path):
        writer = make_capture_writer(tmp_path / "out.cap")
        assert isinstance(writer, ColumnarWriter)
        writer.close()

    def test_jsonl_writer(self, tmp_path):
        writer = make_capture_writer(tmp_path / "out.jsonl",
                                     format="jsonl")
        assert isinstance(writer, JsonlWriter)
        writer.close()

    def test_writer_options_forwarded(self, tmp_path):
        path = tmp_path / "out.cap"
        with make_capture_writer(path, block_records=3) as writer:
            for record in make_records(10):
                writer.write(record)
        assert ColumnarReader(path).info()["blocks"] == 4


class TestCustomCodec:
    def test_register_and_roundtrip(self, tmp_path):
        """A third-party codec plugs into sniff/open/write dispatch."""

        class ListReader:
            def __init__(self, path, strict=True, **options):
                self._records = _STORE[str(path)]

            def __iter__(self):
                return iter(self._records)

        class ListWriter:
            format = "memlist"

            def __init__(self, path, **options):
                self._path, self._records = str(path), []

            def write(self, received):
                self._records.append(received)

            def close(self):
                _STORE[self._path] = self._records

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                self.close()

        _STORE = {}
        marker = b"MEMLIST0"
        codec = CaptureCodec(
            name="memlist",
            sniff=lambda path: open(path, "rb").read(8) == marker,
            reader=ListReader,
            writer=ListWriter,
            description="in-memory list codec (test)")
        try:
            register_codec(codec)
            assert "memlist" in codec_names()
            assert get_codec("memlist") is codec
            with pytest.raises(ValueError):
                register_codec(codec)  # duplicate without replace
            register_codec(codec, replace=True)

            path = tmp_path / "cap.memlist"
            records = make_records(3)
            with make_capture_writer(path, format="memlist") as writer:
                for record in records:
                    writer.write(record)
            path.write_bytes(marker)  # sniffable stand-in on disk
            assert sniff_format(path) == "memlist"
            assert list(open_capture(path)) == records
        finally:
            _CODECS.pop("memlist", None)

    def test_get_codec_unknown(self):
        with pytest.raises(ValueError, match="unknown capture format"):
            get_codec("nope")


class TestDeprecatedShims:
    def test_writer_shim_warns_and_works(self, tmp_path):
        from repro.net80211.capture_file import CaptureReader, CaptureWriter

        path = tmp_path / "cap.jsonl"
        records = make_records(2)
        with pytest.warns(DeprecationWarning):
            writer = CaptureWriter(path)
        with writer:
            for record in records:
                writer.write(record)
        with pytest.warns(DeprecationWarning):
            reader = CaptureReader(path)
        assert list(reader) == records

    def test_shims_are_the_jsonl_codec(self):
        from repro.net80211.capture_file import CaptureReader, CaptureWriter

        assert issubclass(CaptureReader, JsonlReader)
        assert issubclass(CaptureWriter, JsonlWriter)

    def test_lazy_attribute_on_package(self):
        import repro.net80211 as net80211

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert net80211.CaptureReader is not None
        assert "CaptureWriter" in dir(net80211)
        with pytest.raises(AttributeError):
            net80211.DoesNotExist


class TestErrorTaxonomy:
    def test_capture_error_is_value_error(self):
        assert issubclass(CaptureError, ValueError)

    def test_open_capture_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            open_capture(tmp_path / "missing.cap")
