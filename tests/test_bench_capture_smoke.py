"""Tier-1 smoke for the capture replay bench (a tiny --records run).

Guards the acceptance property — columnar batch replay beats JSONL
record replay on the same capture, with identical engine output —
without the full 1M-record bench.  Runs the bench the way an operator
would, as a standalone process.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH = REPO_ROOT / "benchmarks" / "bench_capture_replay.py"


def test_bench_capture_replay_smoke(tmp_path):
    out_path = tmp_path / "capture_replay.json"
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    result = subprocess.run(
        [sys.executable, str(BENCH), "--records", "8000",
         "--block-records", "1024", "--engine-frames", "2000",
         "--json", str(out_path)],
        capture_output=True, text=True, env=env, timeout=180)
    assert result.returncode == 0, result.stderr
    assert "columnar batch path" in result.stdout

    report = json.loads(out_path.read_text())
    assert report["bench"] == "capture_replay"
    assert report["config"]["cpu_count"] == os.cpu_count()
    assert report["corpus"]["records"] == 8000

    seq = report["sequential"]
    for mode in ("jsonl_records", "columnar_records", "columnar_batches"):
        assert seq[mode]["records"] == 8000
    # The acceptance property, at smoke scale: the batch seam is
    # strictly faster than JSONL decode (full scale shows >= 10x).
    assert seq["columnar_batches_speedup"] > 1.0

    selective = report["selective"]
    assert selective["jsonl"]["records"] == selective["columnar"]["records"]
    assert selective["columnar"]["blocks_skipped"] > 0
    assert selective["jsonl"]["blocks_skipped"] == 0

    engine = report["engine"]
    assert engine["outputs_identical"] is True
    assert engine["frames"] == 2000
