"""Multi-vantage (store-merge) tests — a future-work extension."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.net80211.frames import Dot11Frame, FrameType, probe_response
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid
from repro.sniffer.observation import ObservationStore

STA = MacAddress.parse("00:1b:63:11:22:33")
AP1 = MacAddress.parse("00:15:6d:00:00:01")
AP2 = MacAddress.parse("00:15:6d:00:00:02")


def response(ap, t):
    frame = probe_response(ap, STA, 6, t, Ssid("n"))
    return ReceivedFrame(frame, -70.0, 20.0, 6, t)


class TestStoreMerge:
    def test_gammas_union(self):
        north = ObservationStore()
        north.ingest(response(AP1, 1.0))
        south = ObservationStore()
        south.ingest(response(AP2, 2.0))
        north.merge(south)
        assert north.gamma(STA) == {AP1, AP2}

    def test_frame_counts_add(self):
        a = ObservationStore()
        a.ingest(response(AP1, 1.0))
        b = ObservationStore()
        b.ingest(response(AP2, 2.0))
        b.ingest(response(AP1, 3.0))
        a.merge(b)
        assert a.frame_count == 3

    def test_associations_merge_newest_wins(self):
        def data(bssid, t):
            frame = Dot11Frame(frame_type=FrameType.DATA, source=STA,
                               destination=bssid, channel=6,
                               timestamp=t, bssid=bssid)
            return ReceivedFrame(frame, -70.0, 20.0, 6, t)

        a = ObservationStore()
        a.ingest(data(AP1, 1.0))
        b = ObservationStore()
        b.ingest(data(AP2, 5.0))
        a.merge(b)
        assert a.known_associations() == [(STA, AP2, 6)]

    def test_merge_preserves_windows(self):
        a = ObservationStore(window_s=30.0)
        a.ingest(response(AP1, 1.0))
        b = ObservationStore(window_s=30.0)
        b.ingest(response(AP2, 2.0))
        a.merge(b)
        assert a.corpus() == [{AP1, AP2}]

    def test_two_vantage_points_see_more(self):
        """End-to-end: corner sniffers merged cover more than either."""
        from repro.net80211.medium import Medium
        from repro.net80211.station import PROFILES, MobileStation
        from repro.radio.propagation import LogDistanceModel
        from repro.sim.world import CampusWorld
        from repro.sniffer.receiver import build_marauder_sniffer
        from tests.test_sim_world import make_ap

        # Lossy channel so neither corner sniffer hears everything.
        medium = Medium(LogDistanceModel(exponent=3.6))
        aps = [make_ap(i, 150.0 + 250.0 * (i % 2),
                       150.0 + 250.0 * (i // 2), max_range=100.0)
               for i in range(4)]

        def run_with(sniffer_pos):
            sniffer = build_marauder_sniffer(sniffer_pos, medium)
            world = CampusWorld(aps, medium, sniffer=sniffer, seed=1)
            station = MobileStation(
                mac=MacAddress.random(np.random.default_rng(4)),
                position=Point(275.0, 275.0),
                profile=PROFILES["aggressive"])
            world.add_station(station)
            world.run(duration_s=60.0)
            return sniffer.store, station.mac

        store_a, mac = run_with(Point(100.0, 100.0))
        store_b, _ = run_with(Point(450.0, 450.0))
        merged = ObservationStore()
        merged.merge(store_a)
        merged.merge(store_b)
        assert merged.gamma(mac) >= store_a.gamma(mac)
        assert merged.gamma(mac) >= store_b.gamma(mac)
        assert merged.gamma(mac) == store_a.gamma(mac) | store_b.gamma(mac)


class TestCliGeojsonFlag:
    def test_map_exports_geojson(self, tmp_path):
        from repro.cli import main

        html = tmp_path / "map.html"
        geojson = tmp_path / "map.geojson"
        code = main(["map", "--seed", "3", "--duration", "60",
                     "--output", str(html), "--geojson", str(geojson)])
        assert code == 0
        assert geojson.exists()
        import json

        parsed = json.loads(geojson.read_text())
        kinds = {f["properties"]["kind"] for f in parsed["features"]}
        assert "access_point" in kinds
        assert "truth" in kinds
