"""Partition function tests: stability, uniformity, routing keys."""

import zlib

from repro.net80211.frames import (
    beacon,
    probe_request,
    probe_response,
)
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid
from repro.service import device_shard, routing_key, shard_of

import pytest


def received(frame):
    return ReceivedFrame(frame, rssi_dbm=-70.0, snr_db=20.0,
                         rx_channel=6, rx_timestamp=frame.timestamp)


class TestDeviceShard:
    def test_is_crc32_of_big_endian_mac(self):
        # The contract is the *specific* stable function, not just any
        # hash: remote transports and resumed fleets must agree on it.
        mac = MacAddress(0x001B63A0B1C2)
        expected = zlib.crc32(
            (0x001B63A0B1C2).to_bytes(6, "big")) % 7
        assert device_shard(mac, 7) == expected

    def test_stable_across_calls(self):
        mac = MacAddress.parse("aa:bb:cc:dd:ee:ff")
        assert device_shard(mac, 4) == device_shard(mac, 4)

    def test_single_shard_gets_everything(self):
        for value in (0, 1, 0xFFFFFFFFFFFF):
            assert device_shard(MacAddress(value), 1) == 0

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            device_shard(MacAddress(1), 0)

    def test_roughly_uniform_over_devices(self):
        shards = 4
        counts = [0] * shards
        for i in range(2000):
            counts[device_shard(MacAddress(0x020000000000 + i),
                                shards)] += 1
        # CRC32 over sequential MACs should spread well; allow wide
        # slack — the point is "no shard starves", not perfection.
        assert min(counts) > 2000 / shards * 0.5
        assert max(counts) < 2000 / shards * 1.5


class TestRoutingKey:
    def test_evidence_routes_by_mobile_not_transmitter(self):
        ap = MacAddress(0x001B63000001)
        mobile = MacAddress(0x020000000007)
        # A probe *response* is transmitted by the AP but proves the
        # mobile communicable — the mobile's shard owns it.
        frame = probe_response(ap, mobile, 6, 1.0, ssid=Ssid("x"))
        assert routing_key(received(frame)) == mobile

    def test_probe_request_routes_by_source(self):
        mobile = MacAddress(0x020000000009)
        frame = probe_request(mobile, 6, 1.0)
        assert routing_key(received(frame)) == mobile

    def test_beacon_routes_by_transmitter(self):
        ap = MacAddress(0x001B63000002)
        frame = beacon(ap, 6, 1.0, ssid=Ssid("net"))
        assert routing_key(received(frame)) == ap

    def test_all_evidence_for_one_device_lands_on_one_shard(self):
        mobile = MacAddress(0x020000000042)
        frames = [probe_response(MacAddress(0x001B63000000 + i),
                                 mobile, 6, float(i), ssid=Ssid("x"))
                  for i in range(8)]
        frames.append(probe_request(mobile, 6, 99.0))
        shards = {shard_of(received(f), 5) for f in frames}
        assert len(shards) == 1
