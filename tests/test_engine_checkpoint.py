"""Checkpoint/restore: an interrupted engine run equals an uninterrupted one."""

import json

import pytest

from repro.engine import StreamingEngine
from repro.localization import MLoc
from repro.net80211.frames import probe_request, probe_response
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid


def station(index):
    return MacAddress(0x020000000000 + index)


def build_stream(square_db, devices=8, rounds=3):
    """Several rounds of evidence; Γ sets shrink and grow over time."""
    frames = []
    t = 0.0
    records = list(square_db)
    for round_index in range(rounds):
        for d in range(devices):
            # Later rounds drop one AP so Γ actually changes.
            heard = records if round_index % 2 == 0 else records[:-1]
            frames.append(ReceivedFrame(
                probe_request(station(d), 6, t, ssid=Ssid("home")),
                rssi_dbm=-70.0, snr_db=20.0, rx_channel=6,
                rx_timestamp=t))
            for record in heard:
                t += 0.01
                frame = probe_response(record.bssid, station(d), 6, t,
                                       ssid=record.ssid)
                frames.append(ReceivedFrame(frame, rssi_dbm=-70.0,
                                            snr_db=20.0, rx_channel=6,
                                            rx_timestamp=t))
            t += 2.0
        t += 40.0  # next round falls outside the co-observation window
    return frames


def final_tracks(engine):
    """Comparable (timestamp, x, y, algorithm, k) track tuples."""
    return {
        str(mobile): [
            (point.timestamp,
             round(point.estimate.position.x, 9),
             round(point.estimate.position.y, 9),
             point.estimate.algorithm,
             point.estimate.used_ap_count)
            for point in engine.tracker.track_of(mobile)
        ]
        for mobile in engine.tracker.devices()
    }


@pytest.mark.parametrize("cut", [5, 37, 73])
def test_roundtrip_matches_uninterrupted_run(square_db, cut):
    frames = build_stream(square_db)
    assert cut < len(frames)

    uninterrupted = StreamingEngine(MLoc(square_db), window_s=30.0,
                                    batch_size=3)
    uninterrupted.run(iter(frames))

    first = StreamingEngine(MLoc(square_db), window_s=30.0, batch_size=3)
    first.ingest_stream(frames[:cut])  # stop mid-stream, no final drain
    blob = json.dumps(first.checkpoint())  # must be JSON all the way

    resumed = StreamingEngine.restore(json.loads(blob), MLoc(square_db))
    resumed.ingest_stream(frames[cut:])
    resumed.flush()

    assert final_tracks(resumed) == final_tracks(uninterrupted)
    assert (resumed.stats().estimates_emitted
            == uninterrupted.stats().estimates_emitted)
    assert (resumed.stats().frames_ingested
            == uninterrupted.stats().frames_ingested)


def test_save_and_load_checkpoint_file(square_db, tmp_path):
    frames = build_stream(square_db, devices=3, rounds=1)
    engine = StreamingEngine(MLoc(square_db), batch_size=2)
    engine.ingest_stream(frames)
    path = tmp_path / "engine.ckpt.json"
    engine.save_checkpoint(path)

    restored = StreamingEngine.load_checkpoint(path, MLoc(square_db))
    assert restored.gamma_state.window_s == engine.gamma_state.window_s
    assert restored.scheduler.to_list() == engine.scheduler.to_list()
    assert final_tracks(restored) == final_tracks(engine)
    assert (restored.stats().frames_ingested
            == engine.stats().frames_ingested)


def test_restore_rejects_unknown_version(square_db):
    with pytest.raises(ValueError):
        StreamingEngine.restore({"engine_checkpoint": 99},
                                MLoc(square_db))


def test_restored_tracks_carry_positions_not_regions(square_db):
    frames = build_stream(square_db, devices=2, rounds=1)
    engine = StreamingEngine(MLoc(square_db), batch_size=2)
    engine.ingest_stream(frames)
    engine.flush()
    restored = StreamingEngine.restore(engine.checkpoint(),
                                       MLoc(square_db))
    for mobile in restored.tracker.devices():
        for point in restored.tracker.track_of(mobile):
            assert point.estimate.region is None
            assert point.estimate.algorithm == "m-loc"


class TestWorkerPoolEquivalence:
    """workers > 1 is a throughput knob, never a semantics knob."""

    def test_parallel_run_matches_sequential(self, square_db):
        frames = build_stream(square_db)
        sequential = StreamingEngine(MLoc(square_db), window_s=30.0,
                                     batch_size=3)
        sequential.run(iter(frames))

        parallel = StreamingEngine(MLoc(square_db), window_s=30.0,
                                   batch_size=3, workers=4)
        parallel.run(iter(frames))

        assert final_tracks(parallel) == final_tracks(sequential)
        assert (parallel.stats().estimates_emitted
                == sequential.stats().estimates_emitted)

    @pytest.mark.parametrize("cut", [5, 37, 73])
    def test_roundtrip_with_workers_matches_uninterrupted(self, square_db,
                                                          cut):
        frames = build_stream(square_db)
        uninterrupted = StreamingEngine(MLoc(square_db), window_s=30.0,
                                        batch_size=3)
        uninterrupted.run(iter(frames))

        first = StreamingEngine(MLoc(square_db), window_s=30.0,
                                batch_size=3, workers=4)
        first.ingest_stream(frames[:cut])
        blob = json.dumps(first.checkpoint())
        first.close()

        resumed = StreamingEngine.restore(json.loads(blob), MLoc(square_db))
        assert resumed.workers == 4  # worker count rides the checkpoint
        resumed.ingest_stream(frames[cut:])
        resumed.flush()
        resumed.close()

        assert final_tracks(resumed) == final_tracks(uninterrupted)
        assert (resumed.stats().estimates_emitted
                == uninterrupted.stats().estimates_emitted)

    def test_restore_can_override_worker_count(self, square_db):
        frames = build_stream(square_db, devices=3, rounds=1)
        engine = StreamingEngine(MLoc(square_db), batch_size=2, workers=4)
        engine.ingest_stream(frames)
        engine.close()
        restored = StreamingEngine.restore(engine.checkpoint(),
                                           MLoc(square_db), workers=1)
        assert restored.workers == 1

    def test_rejects_bad_worker_count(self, square_db):
        with pytest.raises(ValueError):
            StreamingEngine(MLoc(square_db), workers=0)
