"""Sequence-number pseudonym-linking tests."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.net80211.frames import beacon, probe_request
from repro.net80211.mac import MacAddress
from repro.net80211.ssid import Ssid
from repro.sniffer.tracker import SequenceNumberLinker


def mac(n):
    return MacAddress.parse(f"02:00:00:00:00:{n:02x}")


def probes(source, start_seq, count, start_ts, step_s=1.0):
    return [probe_request(source, 6, start_ts + i * step_s,
                          sequence=(start_seq + i) % 4096)
            for i in range(count)]


class TestSequenceLinking:
    def test_continuous_counter_links(self):
        linker = SequenceNumberLinker()
        for frame in probes(mac(1), 100, 10, 0.0):
            linker.ingest(frame)
        # New MAC appears 30 s later, counter continues at 115.
        for frame in probes(mac(2), 115, 10, 40.0):
            linker.ingest(frame)
        assert linker.linked_pairs() == [(mac(1), mac(2))]

    def test_counter_reset_breaks_link(self):
        linker = SequenceNumberLinker()
        for frame in probes(mac(1), 100, 10, 0.0):
            linker.ingest(frame)
        for frame in probes(mac(2), 0, 10, 40.0):  # reset counter
            linker.ingest(frame)
        # Gap from 109 to 0 is 3987 mod 4096: far beyond max_gap.
        assert linker.linked_pairs() == []

    def test_long_silence_breaks_link(self):
        linker = SequenceNumberLinker(max_silence_s=60.0)
        for frame in probes(mac(1), 100, 10, 0.0):
            linker.ingest(frame)
        for frame in probes(mac(2), 115, 10, 500.0):
            linker.ingest(frame)
        assert linker.linked_pairs() == []

    def test_overlapping_lifetimes_not_linked(self):
        # Two devices transmitting simultaneously cannot be one NIC.
        linker = SequenceNumberLinker()
        for frame in probes(mac(1), 100, 20, 0.0):
            linker.ingest(frame)
        for frame in probes(mac(2), 110, 20, 5.0):
            linker.ingest(frame)
        assert linker.linked_pairs() == []

    def test_wraparound_at_4096(self):
        linker = SequenceNumberLinker()
        for frame in probes(mac(1), 4090, 5, 0.0):  # ends at 4094
            linker.ingest(frame)
        for frame in probes(mac(2), 2, 5, 30.0):    # wrapped past 4095
            linker.ingest(frame)
        assert linker.linked_pairs() == [(mac(1), mac(2))]

    def test_chains_across_three_identities(self):
        linker = SequenceNumberLinker()
        for frame in probes(mac(1), 0, 5, 0.0):
            linker.ingest(frame)
        for frame in probes(mac(2), 10, 5, 30.0):
            linker.ingest(frame)
        for frame in probes(mac(3), 20, 5, 60.0):
            linker.ingest(frame)
        assert linker.chains() == [[mac(1), mac(2), mac(3)]]

    def test_non_probe_frames_ignored(self):
        linker = SequenceNumberLinker()
        linker.ingest(beacon(mac(1), 6, 0.0, Ssid("x"), sequence=5))
        assert linker.linked_pairs() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            SequenceNumberLinker(max_gap=0)
        with pytest.raises(ValueError):
            SequenceNumberLinker(max_silence_s=0.0)


class TestDefenseInteraction:
    def _rotating_station_frames(self, reset_sequence):
        from repro.defenses import DefendedStation, PseudonymPolicy
        from repro.net80211.station import PROFILES, MobileStation

        rng = np.random.default_rng(7)
        inner = MobileStation(
            mac=MacAddress.random_pseudonym(rng),
            position=Point(0.0, 0.0),
            profile=PROFILES["aggressive"],
            scan_channels=(6,),
        )
        defended = DefendedStation(
            inner=inner,
            pseudonyms=PseudonymPolicy(interval_s=30.0),
            reset_sequence=reset_sequence,
            seed=3)
        frames = []
        for t in range(1, 200):
            frames.extend(defended.tick(float(t)))
        return defended, frames

    def test_naive_rotation_is_chained(self):
        defended, frames = self._rotating_station_frames(
            reset_sequence=False)
        linker = SequenceNumberLinker()
        for frame in frames:
            linker.ingest(frame)
        chains = linker.chains()
        assert chains  # at least one multi-identity chain
        longest = max(chains, key=len)
        assert set(longest) <= set(defended.macs_used)
        assert len(longest) >= 3

    def test_counter_reset_defense_breaks_chains(self):
        _, frames = self._rotating_station_frames(reset_sequence=True)
        linker = SequenceNumberLinker()
        for frame in frames:
            linker.ingest(frame)
        assert linker.chains() == []
