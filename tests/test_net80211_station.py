"""Mobile-station scan state-machine tests."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.net80211.frames import FrameType, deauthentication
from repro.net80211.mac import BROADCAST_MAC, MacAddress
from repro.net80211.ssid import Ssid
from repro.net80211.station import PROFILES, MobileStation, ScanProfile

STA_MAC = MacAddress.parse("00:1b:63:11:22:33")
AP_MAC = MacAddress.parse("00:15:6d:44:55:66")
OTHER_AP = MacAddress.parse("00:15:6d:77:88:99")


def make_station(profile="standard", preferred=(),
                 channels=(1, 6, 11)) -> MobileStation:
    return MobileStation(
        mac=STA_MAC,
        position=Point(0.0, 0.0),
        profile=PROFILES[profile],
        preferred_networks=[Ssid(s) for s in preferred],
        scan_channels=channels,
    )


class TestScanBursts:
    def test_scan_fires_when_due(self):
        station = make_station()
        frames = station.tick(now=0.0)  # first scan due at t=0
        assert frames
        assert all(f.frame_type is FrameType.PROBE_REQUEST for f in frames)

    def test_one_broadcast_probe_per_channel(self):
        station = make_station(channels=(1, 6, 11))
        frames = station.tick(now=0.0)
        broadcast = [f for f in frames if f.ssid.is_wildcard]
        assert sorted(f.channel for f in broadcast) == [1, 6, 11]

    def test_directed_probes_leak_preferred_networks(self):
        station = make_station(preferred=("home", "work"), channels=(6,))
        frames = station.tick(now=0.0)
        directed = {f.ssid.name for f in frames if not f.ssid.is_wildcard}
        assert directed == {"home", "work"}

    def test_no_directed_probes_without_flag(self):
        station = make_station(profile="conservative",
                               preferred=("home",), channels=(6,))
        frames = station.tick(now=0.0)
        assert all(f.ssid.is_wildcard for f in frames)

    def test_interval_respected(self):
        station = make_station()  # standard: 60 s interval
        assert station.tick(now=0.0)
        assert station.tick(now=30.0) == []
        assert station.tick(now=61.0)

    def test_passive_never_scans(self):
        station = make_station(profile="passive")
        for t in (0.0, 100.0, 1000.0):
            assert station.tick(now=t) == []

    def test_first_scan_phase_randomized(self):
        a = make_station()
        b = make_station()
        a.schedule_first_scan(np.random.default_rng(1))
        b.schedule_first_scan(np.random.default_rng(2))
        assert a._next_scan_at != b._next_scan_at

    def test_sequence_numbers_increment(self):
        station = make_station(channels=(1, 6, 11))
        frames = station.tick(now=0.0)
        sequences = [f.sequence for f in frames]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)


class TestDeauthHandling:
    def make_deauth(self, destination=STA_MAC, bssid=AP_MAC):
        return deauthentication(source=bssid, destination=destination,
                                bssid=bssid, channel=6, timestamp=10.0)

    def test_deauth_forces_rescan_for_passive_device(self):
        station = make_station(profile="passive")
        station.associate(AP_MAC)
        assert station.tick(now=5.0) == []
        station.handle_frame(self.make_deauth(), now=10.0)
        assert not station.is_associated
        frames = station.tick(now=11.0)
        assert frames  # the forced rescan
        assert all(f.frame_type is FrameType.PROBE_REQUEST for f in frames)

    def test_broadcast_deauth_accepted(self):
        station = make_station(profile="passive")
        station.associate(AP_MAC)
        station.handle_frame(self.make_deauth(destination=BROADCAST_MAC),
                             now=10.0)
        assert not station.is_associated

    def test_deauth_for_other_station_ignored(self):
        station = make_station(profile="passive")
        station.associate(AP_MAC)
        other = MacAddress.parse("00:1b:63:99:99:99")
        station.handle_frame(self.make_deauth(destination=other), now=10.0)
        assert station.is_associated

    def test_deauth_from_wrong_bss_ignored(self):
        station = make_station(profile="passive")
        station.associate(AP_MAC)
        station.handle_frame(self.make_deauth(bssid=OTHER_AP), now=10.0)
        assert station.is_associated

    def test_non_deauth_frames_ignored(self):
        station = make_station(profile="passive")
        station.associate(AP_MAC)
        from repro.net80211.frames import beacon

        station.handle_frame(beacon(AP_MAC, 6, 1.0, Ssid("x")), now=1.0)
        assert station.is_associated


class TestMisc:
    def test_move_to(self):
        station = make_station()
        station.move_to(Point(5.0, 6.0))
        assert station.position == Point(5.0, 6.0)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ScanProfile("bad", scan_interval_s=0.0)

    def test_pseudonym_copy(self):
        station = make_station(preferred=("home",))
        clone = station.with_new_pseudonym(np.random.default_rng(5))
        assert clone.mac != station.mac
        assert clone.mac.is_locally_administered
        assert clone.preferred_networks == station.preferred_networks
