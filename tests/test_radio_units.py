"""Unit-conversion tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.radio.units import (
    THERMAL_NOISE_DBM_PER_HZ,
    db_to_linear,
    dbm_to_milliwatts,
    linear_to_db,
    milliwatts_to_dbm,
    noise_factor_to_figure,
    noise_figure_to_factor,
    wavelength_m,
)

db_values = st.floats(min_value=-100.0, max_value=100.0,
                      allow_nan=False, allow_infinity=False)


class TestDbConversions:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == 1.0

    def test_three_db_doubles(self):
        assert db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_ten_db_is_ten(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)

    def test_linear_to_db_requires_positive(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)
        with pytest.raises(ValueError):
            linear_to_db(-1.0)

    @given(db_values)
    def test_roundtrip(self, db):
        assert linear_to_db(db_to_linear(db)) == pytest.approx(db, abs=1e-9)


class TestPowerConversions:
    def test_zero_dbm_is_one_milliwatt(self):
        assert dbm_to_milliwatts(0.0) == 1.0

    def test_300_milliwatt_card(self):
        # The Ubiquiti SRC transmits 300 mW ≈ 24.77 dBm.
        assert milliwatts_to_dbm(300.0) == pytest.approx(24.77, abs=0.01)

    def test_nonpositive_power_raises(self):
        with pytest.raises(ValueError):
            milliwatts_to_dbm(0.0)

    @given(db_values)
    def test_roundtrip(self, dbm):
        assert milliwatts_to_dbm(dbm_to_milliwatts(dbm)) == pytest.approx(
            dbm, abs=1e-9)


class TestNoiseConversions:
    def test_figure_factor_pairs(self):
        assert noise_figure_to_factor(0.0) == 1.0
        assert noise_figure_to_factor(3.0103) == pytest.approx(2.0, rel=1e-4)
        assert noise_factor_to_figure(10.0) == pytest.approx(10.0)

    def test_thermal_noise_constant(self):
        # The paper's -174 dBm/Hz figure.
        assert THERMAL_NOISE_DBM_PER_HZ == -174.0


class TestWavelength:
    def test_2_4_ghz(self):
        # ~12.5 cm at 2.4 GHz.
        assert wavelength_m(2.4e9) == pytest.approx(0.1249, abs=1e-3)

    def test_5_ghz(self):
        assert wavelength_m(5.0e9) == pytest.approx(0.05996, abs=1e-4)

    def test_invalid(self):
        with pytest.raises(ValueError):
            wavelength_m(0.0)
