"""ReorderBuffer boundary conditions (the shard-ingest reorder path)."""

import pytest

from repro.engine import ReorderBuffer


def push_all(buffer, items):
    """Push (ts, payload) pairs; return everything displaced, in order."""
    out = []
    for ts, payload in items:
        out.extend(buffer.push(ts, payload))
    return out


class TestCapacityBounds:
    def test_zero_capacity_is_passthrough(self):
        buffer = ReorderBuffer(0)
        assert list(buffer.push(5.0, "a")) == ["a"]
        assert list(buffer.push(1.0, "b")) == ["b"]  # even out of order
        assert buffer.pending == 0
        assert list(buffer.drain()) == []

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ReorderBuffer(-1)

    def test_capacity_one_swaps_adjacent(self):
        buffer = ReorderBuffer(1)
        out = push_all(buffer, [(2.0, "late"), (1.0, "early")])
        out.extend(buffer.drain())
        assert out == ["early", "late"]

    def test_buffer_holds_at_most_capacity(self):
        buffer = ReorderBuffer(3)
        for i in range(10):
            buffer.push(float(i), i)
        assert buffer.pending <= 3
        assert len(buffer) == buffer.pending


class TestOrdering:
    def test_sorts_within_window(self):
        buffer = ReorderBuffer(4)
        out = push_all(buffer, [(3.0, "c"), (1.0, "a"), (2.0, "b"),
                                (5.0, "e"), (4.0, "d")])
        out.extend(buffer.drain())
        assert out == ["a", "b", "c", "d", "e"]

    def test_displacement_beyond_window_keeps_arrival_order(self):
        # A frame older than everything already displaced cannot be
        # rescued — but nothing already yielded is reordered after it.
        buffer = ReorderBuffer(2)
        out = push_all(buffer, [(10.0, "x"), (11.0, "y"), (12.0, "z"),
                                (1.0, "stale")])
        out.extend(buffer.drain())
        assert out.index("x") < out.index("y") < out.index("z")
        assert set(out) == {"x", "y", "z", "stale"}

    def test_equal_timestamps_stay_in_arrival_order(self):
        buffer = ReorderBuffer(4)
        out = push_all(buffer, [(1.0, "first"), (1.0, "second"),
                                (1.0, "third")])
        out.extend(buffer.drain())
        assert out == ["first", "second", "third"]

    def test_drain_empties_and_is_idempotent(self):
        buffer = ReorderBuffer(8)
        buffer.push(2.0, "b")
        buffer.push(1.0, "a")
        assert list(buffer.drain()) == ["a", "b"]
        assert buffer.pending == 0
        assert list(buffer.drain()) == []

    def test_in_order_stream_passes_through_unchanged(self):
        buffer = ReorderBuffer(16)
        items = [(float(i), i) for i in range(50)]
        out = push_all(buffer, items)
        out.extend(buffer.drain())
        assert out == list(range(50))
