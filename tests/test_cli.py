"""CLI tests (each subcommand smoke-run through main())."""

import pytest

from repro.cli import main


class TestTheory:
    def test_runs(self, capsys):
        assert main(["theory", "--max-k", "5"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 2" in out
        assert "k= 5" in out
        assert "Theorem 3" in out


class TestCoverage:
    def test_runs(self, capsys):
        assert main(["coverage"]) == 0
        out = capsys.readouterr().out
        for name in ("DLink", "SRC", "HG2415U", "LNA"):
            assert name in out

    def test_lna_has_best_radius(self, capsys):
        main(["coverage"])
        out = capsys.readouterr().out
        radii = {}
        for line in out.splitlines():
            parts = line.split()
            if parts and parts[0] in ("DLink", "SRC", "HG2415U", "LNA"):
                radii[parts[0]] = float(parts[-2])
        assert radii["LNA"] == max(radii.values())
        assert radii["DLink"] == min(radii.values())


class TestSimulate:
    def test_runs_small(self, capsys):
        assert main(["simulate", "--seed", "5", "--cases", "20"]) == 0
        out = capsys.readouterr().out
        assert "M-Loc" in out
        assert "Centroid" in out
        assert "Paper" in out


class TestWeek:
    def test_passive(self, capsys):
        assert main(["week", "--seed", "2008"]) == 0
        out = capsys.readouterr().out
        assert "Oct 24" in out
        assert "passive monitoring" in out

    def test_active(self, capsys):
        assert main(["week", "--seed", "2008", "--active"]) == 0
        assert "active attack" in capsys.readouterr().out


class TestMap:
    def test_writes_html(self, tmp_path, capsys):
        output = tmp_path / "map.html"
        assert main(["map", "--seed", "3", "--duration", "60",
                     "--output", str(output)]) == 0
        assert output.exists()
        assert "svg" in output.read_text()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["teleport"])
