"""Sniffer card / channel-hopper / capture front-end tests."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.net80211.frames import probe_request
from repro.net80211.mac import MacAddress
from repro.net80211.medium import Medium
from repro.radio.propagation import FreeSpaceModel
from repro.sniffer.capture import ChannelHopper, Sniffer, SnifferCard
from repro.sniffer.receiver import build_marauder_chain

STA = MacAddress.parse("00:1b:63:11:22:33")


class TestChannelHopper:
    def test_cycle(self):
        hopper = ChannelHopper(channels=(1, 6, 11), dwell_s=4.0)
        assert hopper.channel_at(0.0) == 1
        assert hopper.channel_at(4.0) == 6
        assert hopper.channel_at(8.0) == 11
        assert hopper.channel_at(12.0) == 1

    def test_offset(self):
        hopper = ChannelHopper(channels=(1, 6), dwell_s=2.0, offset_s=2.0)
        assert hopper.channel_at(0.0) == 6

    def test_cycle_time(self):
        hopper = ChannelHopper(channels=tuple(range(1, 12)), dwell_s=4.0)
        assert hopper.cycle_s() == 44.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelHopper(channels=(), dwell_s=1.0)
        with pytest.raises(ValueError):
            ChannelHopper(channels=(1,), dwell_s=0.0)


class TestSnifferCard:
    def test_fixed_channel(self):
        card = SnifferCard(chain=build_marauder_chain(), channel=6)
        assert card.channel_at(0.0) == 6
        assert card.channel_at(1000.0) == 6

    def test_hopping_channel(self):
        card = SnifferCard(chain=build_marauder_chain(),
                           channel=ChannelHopper((1, 6), dwell_s=1.0))
        assert card.channel_at(0.5) == 1
        assert card.channel_at(1.5) == 6


class TestSniffer:
    def make_sniffer(self, channels=(1, 6, 11), keep=False):
        chain = build_marauder_chain()
        cards = [SnifferCard(chain=chain, channel=c) for c in channels]
        return Sniffer(position=Point(0, 0), cards=cards,
                       medium=Medium(FreeSpaceModel()), keep_frames=keep)

    def test_capture_on_monitored_channel(self):
        sniffer = self.make_sniffer()
        rng = np.random.default_rng(0)
        frame = probe_request(STA, channel=6, timestamp=0.0)
        received = sniffer.hear(frame, Point(100, 0), rng)
        assert received is not None
        assert sniffer.store.frame_count == 1

    def test_miss_on_unmonitored_channel(self):
        sniffer = self.make_sniffer(channels=(1, 11))
        rng = np.random.default_rng(0)
        frame = probe_request(STA, channel=6, timestamp=0.0)
        assert sniffer.hear(frame, Point(100, 0), rng) is None
        assert sniffer.store.frame_count == 0

    def test_single_capture_across_cards(self):
        # Two cards on the same channel must not double-ingest a frame.
        sniffer = self.make_sniffer(channels=(6, 6))
        rng = np.random.default_rng(0)
        frame = probe_request(STA, channel=6, timestamp=0.0)
        sniffer.hear(frame, Point(100, 0), rng)
        assert sniffer.store.frame_count == 1

    def test_keep_frames(self):
        sniffer = self.make_sniffer(keep=True)
        rng = np.random.default_rng(0)
        frame = probe_request(STA, channel=1, timestamp=0.0)
        sniffer.hear(frame, Point(50, 0), rng)
        assert len(sniffer.captured) == 1

    def test_frames_not_kept_by_default(self):
        sniffer = self.make_sniffer()
        rng = np.random.default_rng(0)
        sniffer.hear(probe_request(STA, channel=1, timestamp=0.0),
                     Point(50, 0), rng)
        assert sniffer.captured == []

    def test_channels_at(self):
        sniffer = self.make_sniffer()
        assert sniffer.channels_at(0.0) == [1, 6, 11]
