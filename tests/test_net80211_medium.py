"""Wireless-medium delivery tests."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.net80211.frames import probe_request
from repro.net80211.mac import MacAddress
from repro.net80211.medium import Medium
from repro.radio.propagation import FreeSpaceModel
from repro.sniffer.receiver import build_marauder_chain, build_src_chain

STA = MacAddress.parse("00:1b:63:11:22:33")


@pytest.fixture
def medium():
    return Medium(propagation=FreeSpaceModel())


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestReceivedPower:
    def test_includes_gains_and_loss(self, medium):
        frame = probe_request(STA, channel=6, timestamp=0.0,
                              tx_power_dbm=15.0)
        power = medium.received_power_dbm(frame, Point(0, 0),
                                          Point(100, 0),
                                          rx_antenna_gain_dbi=15.0)
        from repro.radio.link_budget import free_space_path_loss_db
        from repro.radio.channels import center_frequency_hz

        expected = 15.0 + 0.0 + 15.0 - free_space_path_loss_db(
            100.0, center_frequency_hz(6))
        assert power == pytest.approx(expected)

    def test_power_decreases_with_distance(self, medium):
        frame = probe_request(STA, channel=6, timestamp=0.0)
        near = medium.received_power_dbm(frame, Point(0, 0),
                                         Point(50, 0), 15.0)
        far = medium.received_power_dbm(frame, Point(0, 0),
                                        Point(500, 0), 15.0)
        assert near > far


class TestDeliver:
    def test_cochannel_close_always_delivers(self, medium, rng):
        frame = probe_request(STA, channel=6, timestamp=0.0)
        chain = build_marauder_chain()
        received = medium.deliver(frame, Point(0, 0), Point(100, 0),
                                  chain, rx_channel=6, rng=rng)
        assert received is not None
        assert received.frame is frame
        assert received.rx_channel == 6
        assert received.snr_db > chain.nic.snr_min_db

    def test_far_transmitter_dropped(self, medium, rng):
        frame = probe_request(STA, channel=6, timestamp=0.0)
        received = medium.deliver(frame, Point(0, 0), Point(500_000, 0),
                                  build_src_chain(), rx_channel=6, rng=rng)
        assert received is None

    def test_disjoint_channel_dropped(self, medium, rng):
        frame = probe_request(STA, channel=1, timestamp=0.0)
        received = medium.deliver(frame, Point(0, 0), Point(50, 0),
                                  build_marauder_chain(), rx_channel=6,
                                  rng=rng)
        assert received is None

    def test_neighbor_channel_rarely_delivers(self, medium):
        # The Fig 9 effect, statistically: a strong transmitter one
        # channel off is decoded for only a few percent of frames.
        frame = probe_request(STA, channel=11, timestamp=0.0)
        chain = build_marauder_chain()
        rng = np.random.default_rng(42)
        delivered = sum(
            medium.deliver(frame, Point(0, 0), Point(30, 0), chain,
                           rx_channel=10, rng=rng) is not None
            for _ in range(2000)
        )
        assert 0 < delivered < 2000 * 0.12

    def test_rssi_metadata_recorded(self, medium, rng):
        frame = probe_request(STA, channel=6, timestamp=3.5)
        received = medium.deliver(frame, Point(0, 0), Point(100, 0),
                                  build_marauder_chain(), rx_channel=6,
                                  rng=rng)
        assert received.rx_timestamp == 3.5
        assert received.rssi_dbm < 0.0
        assert received.source == STA

    def test_deliver_to_many_preserves_order(self, medium, rng):
        frame = probe_request(STA, channel=6, timestamp=0.0)
        chain = build_marauder_chain()
        receivers = [
            (Point(100, 0), chain, 6),      # should deliver
            (Point(100, 0), chain, 1),      # disjoint channel: None
            (Point(500_000, 0), chain, 6),  # too far: None
        ]
        results = medium.deliver_to_many(frame, Point(0, 0), receivers,
                                         rng)
        assert results[0] is not None
        assert results[1] is None
        assert results[2] is None
