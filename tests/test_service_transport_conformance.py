"""One behavioural contract, three transports.

Every Bus implementation — in-process queues, multiprocessing queues,
TCP sockets — must be interchangeable under the router: same
back-pressure, same timeout surface, same reset-after-crash semantics.
The parameterized half of this file pins that contract; the SocketBus
half covers what only a network transport can do wrong (stale
generations, severed connections, silent peers, garbage bytes).
"""

import pickle
import socket
import threading
import time

import pytest

from repro import obs
from repro.service import (BusTimeout, ConnectionLost, MpQueueBus,
                           QueueBus, ShardChannel, SocketBus)
from repro.service import wire

#: Fast liveness knobs so dead-peer tests finish in well under a second.
FAST = {"heartbeat_s": 0.05, "dead_after_s": 0.2,
        "reconnect": {"max_attempts": 3, "base_delay": 0.02,
                      "max_delay": 0.1}}


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture(params=["thread", "process", "socket"])
def make_bus(request):
    """A factory for one transport; closes every bus it built."""
    built = []

    def factory(shards, capacity=4):
        if request.param == "thread":
            bus = QueueBus(shards, capacity=capacity)
        elif request.param == "process":
            bus = MpQueueBus(shards, capacity=capacity)
        else:
            bus = SocketBus(shards, capacity=capacity, **FAST)
        built.append(bus)
        return bus

    factory.transport = request.param
    yield factory
    for bus in built:
        bus.close()


class TestBusConformance:
    def test_publish_collect_roundtrip(self, make_bus):
        bus = make_bus(2)
        inbox, outbox = bus.endpoints(1)
        bus.publish(1, ("frames", [1, 2, 3]), timeout=5.0)
        assert inbox.get(timeout=5.0) == ("frames", [1, 2, 3])
        outbox.put(("reply", 0, "ok"))
        assert bus.collect(1, timeout=5.0) == ("reply", 0, "ok")

    def test_capacity_one_backpressures_publish(self, make_bus):
        bus = make_bus(1, capacity=1)
        bus.publish(0, ("first",), timeout=5.0)
        with pytest.raises(BusTimeout):
            bus.publish(0, ("second",), timeout=0.1)

    def test_backpressure_releases_when_consumed(self, make_bus):
        bus = make_bus(1, capacity=1)
        inbox, _ = bus.endpoints(0)
        bus.publish(0, ("first",), timeout=5.0)

        def consume_later():
            time.sleep(0.1)
            assert inbox.get(timeout=5.0) == ("first",)

        consumer = threading.Thread(target=consume_later)
        consumer.start()
        try:
            # Blocked until the consumer frees (and acks) the slot.
            bus.publish(0, ("second",), timeout=5.0)
        finally:
            consumer.join()
        assert inbox.get(timeout=5.0) == ("second",)

    def test_collect_times_out_on_a_dead_consumer(self, make_bus):
        bus = make_bus(1)
        with pytest.raises(BusTimeout) as excinfo:
            bus.collect(0, timeout=0.05)
        assert "within 0.05s" in str(excinfo.value)

    def test_nonblocking_collect_message_is_not_nonsense(self, make_bus):
        # The old message rendered "within Nones" for block=False.
        bus = make_bus(1)
        with pytest.raises(BusTimeout) as excinfo:
            bus.collect(0, block=False)
        assert "no message queued from shard 0" in str(excinfo.value)
        assert "None" not in str(excinfo.value)

    def test_reset_gives_fresh_working_endpoints(self, make_bus):
        bus = make_bus(2)
        old_inbox, old_outbox = bus.endpoints(0)
        bus.publish(0, ("stale",), timeout=5.0)
        bus.reset(0)
        new_inbox, new_outbox = bus.endpoints(0)
        assert new_inbox is not old_inbox
        assert new_outbox is not old_outbox
        # The post-reset slot starts clean and works end to end.
        bus.publish(0, ("fresh",), timeout=5.0)
        assert new_inbox.get(timeout=5.0) == ("fresh",)
        new_outbox.put(("ready", 0))
        assert bus.collect(0, timeout=5.0) == ("ready", 0)

    def test_close_is_idempotent(self, make_bus):
        bus = make_bus(1)
        bus.close()
        bus.close()

    def test_rejects_bad_shapes(self, make_bus):
        with pytest.raises(ValueError):
            make_bus(0)
        with pytest.raises(ValueError):
            make_bus(1, capacity=0)


class TestSocketBusSpecific:
    @pytest.fixture
    def registry(self):
        return obs.MetricsRegistry()

    @pytest.fixture
    def bus(self, registry):
        bus = SocketBus(2, capacity=4, registry=registry, **FAST)
        yield bus
        bus.close()

    def counter(self, registry, name):
        return registry.counter(f"repro.socket.{name}").value

    def test_stale_endpoint_after_reset_dies_visibly(self, bus,
                                                     registry):
        inbox, _ = bus.endpoints(0)
        bus.reset(0)
        # The first put starts the channel, whose HELLO is now stale;
        # the rejection surfaces on whichever call observes it first
        # (put, if the reject lands before it queues).
        with pytest.raises(ConnectionLost) as excinfo:
            inbox.put(("doomed",))
            inbox.get(timeout=5.0)
        assert "stale endpoint generation" in str(excinfo.value)
        assert self.counter(registry, "hello_rejects") >= 1
        inbox.close()

    def test_kill_connection_is_lossless(self, bus, registry):
        channel, _ = bus.endpoints(0)
        bus.publish(0, ("one",), timeout=5.0)
        bus.publish(0, ("two",), timeout=5.0)
        assert channel.get(timeout=5.0) == ("one",)
        assert wait_until(lambda: bus.connected(0))
        assert bus.kill_connection(0)
        # The undelivered tail survives the severed connection ...
        assert channel.get(timeout=10.0) == ("two",)
        # ... and the reverse direction works on the new connection.
        channel.put(("reply", 7))
        assert bus.collect(0, timeout=10.0) == ("reply", 7)
        assert channel.reconnects >= 1
        assert wait_until(
            lambda: self.counter(registry, "reconnects") >= 1)
        channel.close()

    def test_kill_connection_without_a_peer_reports_false(self, bus):
        assert bus.kill_connection(1) is False

    def test_silent_peer_is_declared_dead(self, bus, registry):
        raw = socket.create_connection(bus.address, timeout=5.0)
        try:
            wire.send_frame(raw, wire.HELLO, wire.hello_payload(
                role="shard", run_id=bus.run_id, shard=0, generation=0,
                received=0, consumed=0))
            ftype, _ = wire.read_frame(raw)
            assert ftype == wire.HELLO_OK
            assert wait_until(lambda: bus.connected(0))
            # Now go silent: no heartbeats, no data.  The router must
            # notice within dead_after_s and detach.
            assert wait_until(lambda: not bus.connected(0))
            assert self.counter(registry, "heartbeats_missed") >= 1
        finally:
            raw.close()

    def test_garbage_bytes_are_counted_and_dropped(self, bus, registry):
        raw = socket.create_connection(bus.address, timeout=5.0)
        try:
            raw.sendall(b"GET /snapshot HTTP/1.1\r\nHost: x\r\n\r\n")
            assert wait_until(
                lambda: self.counter(registry, "crc_rejects") >= 1)
            assert not bus.connected(0)
        finally:
            raw.close()

    def test_wrong_run_id_is_rejected_at_hello(self, bus, registry):
        raw = socket.create_connection(bus.address, timeout=5.0)
        try:
            wire.send_frame(raw, wire.HELLO, wire.hello_payload(
                role="shard", run_id="someone-elses-fleet", shard=0,
                generation=0))
            ftype, payload = wire.read_frame(raw)
            assert ftype == wire.HELLO_REJECT
            assert "wrong run" in wire.unpack_dict(payload)["reason"]
            assert self.counter(registry, "hello_rejects") >= 1
        finally:
            raw.close()

    def test_out_of_range_shard_is_rejected(self, bus):
        raw = socket.create_connection(bus.address, timeout=5.0)
        try:
            wire.send_frame(raw, wire.HELLO, wire.hello_payload(
                role="shard", run_id=bus.run_id, shard=99, generation=0))
            ftype, payload = wire.read_frame(raw)
            assert ftype == wire.HELLO_REJECT
            assert "out of range" in wire.unpack_dict(payload)["reason"]
        finally:
            raw.close()

    def test_channel_pickles_before_first_use(self, bus):
        channel, _ = bus.endpoints(1)
        clone = pickle.loads(pickle.dumps(channel))
        assert isinstance(clone, ShardChannel)
        assert clone.address == channel.address
        assert clone.shard == 1
        assert clone.run_id == bus.run_id
        # The clone is fully functional: it connects and consumes.
        bus.publish(1, ("shipped",), timeout=5.0)
        assert clone.get(timeout=5.0) == ("shipped",)
        clone.put(("pong",))
        assert bus.collect(1, timeout=5.0) == ("pong",)
        clone.close()
        channel.close()

    def test_endpoints_after_reset_carry_the_new_generation(self, bus):
        before, _ = bus.endpoints(0)
        bus.reset(0)
        after, _ = bus.endpoints(0)
        assert after.generation == before.generation + 1

    def test_publish_timeout_message_names_the_shard(self, bus):
        bus.publish(0, ("a",), timeout=5.0)
        bus.publish(0, ("b",), timeout=5.0)
        bus.publish(0, ("c",), timeout=5.0)
        bus.publish(0, ("d",), timeout=5.0)
        with pytest.raises(BusTimeout) as excinfo:
            bus.publish(0, ("e",), timeout=0.05)
        assert "shard 0 inbox full" in str(excinfo.value)

    def test_liveness_knobs_are_validated(self):
        with pytest.raises(ValueError):
            SocketBus(1, heartbeat_s=0.0)
        with pytest.raises(ValueError):
            SocketBus(1, heartbeat_s=1.0, dead_after_s=0.5)
