"""Observation-store persistence tests (the Fig 1 database component)."""

import pytest

from repro.net80211.frames import Dot11Frame, FrameType, probe_request, probe_response
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid
from repro.sniffer.observation import ObservationStore

STA = MacAddress.parse("00:1b:63:11:22:33")
AP1 = MacAddress.parse("00:15:6d:00:00:01")
AP2 = MacAddress.parse("00:15:6d:00:00:02")


def populated_store():
    store = ObservationStore(window_s=20.0)
    store.ingest(ReceivedFrame(probe_request(STA, 6, 1.0),
                               -70.0, 20.0, 6, 1.0))
    for ap, t in ((AP1, 1.1), (AP2, 2.0), (AP1, 55.0)):
        frame = probe_response(ap, STA, 6, t, Ssid("n"))
        store.ingest(ReceivedFrame(frame, -72.0, 18.0, 6, t))
    data = Dot11Frame(frame_type=FrameType.DATA, source=STA,
                      destination=AP1, channel=6, timestamp=60.0,
                      bssid=AP1)
    store.ingest(ReceivedFrame(data, -70.0, 20.0, 6, 60.0))
    return store


class TestRoundtrip:
    def test_dict_roundtrip_preserves_everything(self):
        store = populated_store()
        recovered = ObservationStore.from_dict(store.to_dict())
        assert recovered.window_s == store.window_s
        assert recovered.frame_count == store.frame_count
        assert recovered.seen_mobiles == store.seen_mobiles
        assert recovered.probing_mobiles == store.probing_mobiles
        assert recovered.observed_aps == store.observed_aps
        assert recovered.all_observations() == store.all_observations()
        assert recovered.known_associations() == store.known_associations()

    def test_windows_survive(self):
        store = populated_store()
        recovered = ObservationStore.from_dict(store.to_dict())
        original_windows = [(w.mobile, w.window_start, w.observed)
                            for w in store.windows()]
        recovered_windows = [(w.mobile, w.window_start, w.observed)
                             for w in recovered.windows()]
        assert original_windows == recovered_windows

    def test_time_filtered_gamma_survives(self):
        store = populated_store()
        recovered = ObservationStore.from_dict(store.to_dict())
        assert recovered.gamma(STA, at_time=1.0) == \
            store.gamma(STA, at_time=1.0)
        assert recovered.gamma(STA, at_time=55.0) == \
            store.gamma(STA, at_time=55.0)

    def test_file_roundtrip(self, tmp_path):
        store = populated_store()
        path = tmp_path / "observations.json"
        store.save(path)
        recovered = ObservationStore.load(path)
        assert recovered.all_observations() == store.all_observations()

    def test_empty_store_roundtrip(self, tmp_path):
        store = ObservationStore()
        path = tmp_path / "empty.json"
        store.save(path)
        recovered = ObservationStore.load(path)
        assert recovered.frame_count == 0
        assert recovered.seen_mobiles == set()

    def test_json_is_plain_types(self):
        import json

        json.dumps(populated_store().to_dict())  # must not raise
