"""Tier-1 smoke for the localization kernel bench (tiny configuration).

Catches regressions in the acceptance property — the batched NumPy
kernels must beat the scalar reference on the k=10 workload — without
the full sweep.  Runs the bench script the same way an operator would,
as a standalone process.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH = REPO_ROOT / "benchmarks" / "bench_localization_kernels.py"


def test_bench_localization_kernels_smoke(tmp_path):
    out_path = tmp_path / "localization_kernels.json"
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    result = subprocess.run(
        [sys.executable, str(BENCH), "--ks", "10", "--batches", "128",
         "--repeats", "1", "--workers", "2", "--clusters", "8",
         "--json", str(out_path)],
        capture_output=True, text=True, env=env, timeout=300)
    assert result.returncode == 0, result.stderr
    assert "acceptance cell" in result.stdout

    report = json.loads(out_path.read_text())
    assert report["bench"] == "localization_kernels"
    assert report["config"]["ks"] == [10]
    (cell,) = report["results"]
    assert cell["k"] == 10 and cell["batch"] == 128
    # All three implementations ran and produced real throughput.
    assert cell["scalar_sets_per_sec"] > 0.0
    assert cell["kernel_sets_per_sec"] > 0.0
    assert cell["parallel_sets_per_sec"] > 0.0
    # The acceptance property (loose bound — the full sweep is the
    # authoritative ≥3x check; the smoke just guards the direction).
    assert cell["kernel_speedup"] > 1.0
    assert report["acceptance"]["kernel_speedup"] == cell["kernel_speedup"]
