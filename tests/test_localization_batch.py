"""locate_batch equals sequential locate — with and without workers.

The batch API is a pure throughput optimization: for any sequence of Γ
sets it must produce exactly the estimates the sequential ``locate``
loop produces, in the same order, whether the batch runs in-process or
fanned across a ProcessPoolExecutor.
"""

from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.geometry.region import kernel_default, set_kernel_default
from repro.knowledge.apdb import ApDatabase
from repro.localization.centroid import CentroidLocalizer
from repro.localization.mloc import MLoc
from repro.net80211.mac import MacAddress

from tests.helpers import make_record


@pytest.fixture
def grid_db():
    """12 APs on a 3x4 grid with staggered ranges → mixed-size Γ sets."""
    records = []
    index = 0
    for row in range(3):
        for col in range(4):
            records.append(make_record(index, col * 70.0, row * 70.0,
                                       90.0 + 15.0 * (index % 3)))
            index += 1
    return ApDatabase(records)


def mixed_gammas(db, count=40, seed=77):
    """Γ sets of varied size: full-coverage points, edges, and unknowns."""
    rng = np.random.default_rng(seed)
    from repro.geometry.point import Point

    gammas = []
    for i in range(count):
        x = float(rng.uniform(-60.0, 280.0))
        y = float(rng.uniform(-60.0, 200.0))
        gamma = set(db.observable_from(Point(x, y)))
        if i % 7 == 0:
            gamma.add(MacAddress(0xDEAD0000 + i))  # unknown AP, skipped
        if i % 11 == 0:
            gamma = set()  # unlocatable
        gammas.append(frozenset(gamma))
    # Duplicates exercise any intra-batch sharing.
    gammas.extend(gammas[:5])
    return gammas


def assert_estimates_match(got, want):
    assert len(got) == len(want)
    for a, b in zip(got, want):
        if b is None:
            assert a is None
            continue
        assert a is not None
        assert a.position.is_close(b.position, 1e-9)
        assert a.used_ap_count == b.used_ap_count
        assert a.algorithm == b.algorithm
        assert a.area_m2 == pytest.approx(b.area_m2, abs=1e-6, rel=1e-9)


class TestMLocBatch:
    def test_matches_sequential_locate(self, grid_db):
        localizer = MLoc(grid_db)
        gammas = mixed_gammas(grid_db)
        sequential = [localizer.locate(g) for g in gammas]
        batched = localizer.locate_batch(gammas)
        assert_estimates_match(batched, sequential)

    def test_matches_with_four_workers(self, grid_db):
        localizer = MLoc(grid_db)
        gammas = mixed_gammas(grid_db)
        sequential = [localizer.locate(g) for g in gammas]
        with ProcessPoolExecutor(max_workers=4) as executor:
            batched = localizer.locate_batch(gammas, executor=executor)
        assert_estimates_match(batched, sequential)

    def test_matches_with_kernels_disabled(self, grid_db):
        localizer = MLoc(grid_db)
        gammas = mixed_gammas(grid_db, count=12, seed=5)
        original = set_kernel_default(False)
        try:
            scalar_batch = localizer.locate_batch(gammas)
        finally:
            set_kernel_default(original)
        assert kernel_default() == original
        kernel_batch = localizer.locate_batch(gammas)
        assert_estimates_match(kernel_batch, scalar_batch)

    def test_vertex_mode_batch(self, grid_db):
        localizer = MLoc(grid_db, mode="vertex")
        gammas = mixed_gammas(grid_db, count=16, seed=9)
        sequential = [localizer.locate(g) for g in gammas]
        assert_estimates_match(localizer.locate_batch(gammas), sequential)

    def test_empty_batch(self, grid_db):
        assert MLoc(grid_db).locate_batch([]) == []

    def test_all_unlocatable(self, grid_db):
        gammas = [frozenset(), frozenset({MacAddress(0xDEAD)})]
        assert MLoc(grid_db).locate_batch(gammas) == [None, None]


class TestBaseLocalizerBatch:
    """The default locate_batch works for any Localizer subclass."""

    def test_centroid_matches_sequential(self, grid_db):
        localizer = CentroidLocalizer(grid_db)
        gammas = mixed_gammas(grid_db, count=20, seed=3)
        sequential = [localizer.locate(g) for g in gammas]
        assert_estimates_match(localizer.locate_batch(gammas), sequential)

    def test_centroid_with_workers(self, grid_db):
        localizer = CentroidLocalizer(grid_db)
        gammas = mixed_gammas(grid_db, count=20, seed=3)
        sequential = [localizer.locate(g) for g in gammas]
        with ProcessPoolExecutor(max_workers=2) as executor:
            batched = localizer.locate_batch(gammas, executor=executor)
        assert_estimates_match(batched, sequential)
