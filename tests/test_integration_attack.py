"""End-to-end integration tests: the full Marauder's-map attack.

These exercise the complete pipeline the paper describes: stations
probing → APs responding → the receiver chain capturing frames →
observation database → localization algorithms → map display, with
assertions on the paper's qualitative claims at every stage.
"""

import numpy as np
import pytest

from repro.analysis.experiments import TestCase, run_localization_experiment
from repro.localization import (
    APLoc,
    APRad,
    CentroidLocalizer,
    MLoc,
)
from repro.knowledge.wardrive import Wardriver
from repro.sim.mobility import grid_route
from repro.sim.scenarios import (
    build_attack_scenario,
    build_disc_model_experiment,
)


@pytest.fixture(scope="module")
def experiment():
    """A smaller copy of the Fig 13-16 experiment (fast but meaningful)."""
    return build_disc_model_experiment(seed=17, ap_count=200,
                                       area_m=400.0, case_count=60,
                                       extra_corpus=500)


@pytest.fixture(scope="module")
def reports(experiment):
    aprad = experiment.make_aprad()
    aprad.fit(experiment.corpus)
    localizers = {
        "m-loc": MLoc(experiment.mloc_db),
        "ap-rad": aprad,
        "centroid": CentroidLocalizer(experiment.location_db),
    }
    return run_localization_experiment(localizers, experiment.cases)


class TestAccuracyOrdering:
    def test_fig13_error_ordering(self, reports):
        """The paper's headline: M-Loc < AP-Rad < Centroid."""
        assert (reports["m-loc"].mean_error()
                < reports["ap-rad"].mean_error()
                < reports["centroid"].mean_error())

    def test_errors_are_campus_scale(self, reports):
        # Tens of meters, like the paper's 9-17 m — not hundreds.
        for report in reports.values():
            assert report.mean_error() < 60.0

    def test_fig14_mloc_error_decreases_with_k(self, reports):
        report = reports["m-loc"]
        low_k = report.mean_error_vs_min_k(1)
        high_k = report.mean_error_vs_min_k(10)
        assert high_k is not None
        assert high_k < low_k

    def test_fig15_aprad_area_larger(self, reports):
        assert (reports["ap-rad"].mean_area_vs_min_k(4)
                > reports["m-loc"].mean_area_vs_min_k(4))

    def test_fig16_aprad_coverage_lower(self, reports):
        assert (reports["ap-rad"].coverage_probability_vs_min_k(1)
                < reports["m-loc"].coverage_probability_vs_min_k(1))

    def test_mloc_coverage_high(self, reports):
        assert reports["m-loc"].coverage_probability_vs_min_k(1) > 0.8


class TestApLocPipeline:
    def test_fig17_error_decreases_with_training(self, experiment):
        oracle = experiment.truth_db.observable_from
        margin = 40.0

        def aploc_error(tuple_count):
            rows = max(2, int(np.sqrt(tuple_count)))
            per_row = max(2, int(np.ceil(tuple_count / rows)))
            route = grid_route(-margin, -margin,
                               experiment.area_m + margin,
                               experiment.area_m + margin,
                               rows, per_row)[:tuple_count]
            training = Wardriver(oracle).collect(route)
            aploc = APLoc(training, training_radius_m=experiment.r_max,
                          r_max=experiment.r_max, solver="scipy",
                          min_evidence=experiment.aprad_min_evidence,
                          overestimate_factor=experiment.aprad_overestimate)
            aploc.fit(experiment.corpus)
            report = run_localization_experiment(
                {"ap-loc": aploc}, experiment.cases)["ap-loc"]
            if not report.results:
                return float("inf")
            return report.mean_error()

        sparse = aploc_error(16)
        dense = aploc_error(64)
        assert dense < sparse
        assert dense < 50.0


class TestFullWorldPipeline:
    def test_victim_located_from_live_capture(self):
        scenario = build_attack_scenario(seed=9, ap_count=80,
                                         area_m=500.0, bystander_count=6)
        scenario.world.run(duration_s=180.0)
        store = scenario.world.sniffer.store
        gamma = store.gamma(scenario.victim.mac,
                            at_time=scenario.world.now)
        assert gamma
        estimate = MLoc(scenario.truth_db).locate(gamma)
        error = estimate.error_to(scenario.victim.position)
        assert error < 80.0

    def test_bystanders_also_tracked(self):
        """The Marauder's map sees *everyone*, not just the victim."""
        scenario = build_attack_scenario(seed=9, ap_count=80,
                                         area_m=500.0, bystander_count=6)
        scenario.world.run(duration_s=240.0)
        store = scenario.world.sniffer.store
        observations = store.all_observations()
        # Most of the 7 devices (victim + 6) produce usable evidence.
        assert len(observations) >= 4

    def test_observation_store_feeds_aprad(self):
        scenario = build_attack_scenario(seed=9, ap_count=80,
                                         area_m=500.0, bystander_count=6)
        scenario.world.run(duration_s=240.0)
        corpus = scenario.world.sniffer.store.corpus()
        assert corpus
        aprad = APRad(scenario.truth_db.without_ranges(), r_max=150.0,
                      solver="scipy")
        aprad.fit(corpus)
        gamma = scenario.world.sniffer.store.gamma(scenario.victim.mac)
        estimate = aprad.locate(gamma)
        assert estimate is not None
