"""Receiver-chain factory tests."""

import pytest

from repro.geometry.point import Point
from repro.net80211.medium import Medium
from repro.radio.propagation import FreeSpaceModel
from repro.sniffer.receiver import (
    DEFAULT_MONITOR_CHANNELS,
    build_dlink_chain,
    build_hg2415u_chain,
    build_marauder_chain,
    build_marauder_sniffer,
    build_src_chain,
)


class TestChainFactories:
    def test_names_match_figure12(self):
        assert build_dlink_chain().name == "DLink"
        assert build_src_chain().name == "SRC"
        assert build_hg2415u_chain().name == "HG2415U"
        assert build_marauder_chain().name == "LNA"

    def test_antenna_gains(self):
        assert build_dlink_chain().antenna_gain_dbi == 2.0
        assert build_src_chain().antenna_gain_dbi == 4.0
        assert build_hg2415u_chain().antenna_gain_dbi == 15.0
        assert build_marauder_chain().antenna_gain_dbi == 15.0

    def test_sensitivity_ordering_matches_figure12(self):
        # Better chains are more sensitive (lower threshold).
        chains = [build_dlink_chain(), build_src_chain(),
                  build_marauder_chain()]
        sensitivities = [c.sensitivity_dbm for c in chains]
        assert sensitivities == sorted(sensitivities, reverse=True)


class TestMarauderSniffer:
    def test_default_channels(self):
        medium = Medium(FreeSpaceModel())
        sniffer = build_marauder_sniffer(Point(0, 0), medium)
        assert sniffer.channels_at(0.0) == list(DEFAULT_MONITOR_CHANNELS)
        assert DEFAULT_MONITOR_CHANNELS == (1, 6, 11)

    def test_cards_share_chain(self):
        medium = Medium(FreeSpaceModel())
        sniffer = build_marauder_sniffer(Point(0, 0), medium)
        chains = {id(card.chain) for card in sniffer.cards}
        assert len(chains) == 1  # one antenna+LNA+splitter feeds all

    def test_too_many_channels_rejected(self):
        medium = Medium(FreeSpaceModel())
        with pytest.raises(ValueError, match="splitter outputs"):
            build_marauder_sniffer(Point(0, 0), medium,
                                   channels=(1, 2, 3, 4, 5))

    def test_custom_store(self):
        from repro.sniffer.observation import ObservationStore

        medium = Medium(FreeSpaceModel())
        store = ObservationStore(window_s=10.0)
        sniffer = build_marauder_sniffer(Point(0, 0), medium, store=store)
        assert sniffer.store is store
