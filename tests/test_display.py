"""Map-display tests (SVG structure, HTML wrapper)."""

import pytest

from repro.display.htmlmap import render_html_map
from repro.display.svgmap import (
    COLOR_ESTIMATE,
    COLOR_TRUE,
    MapRenderer,
)
from repro.geometry.point import Point


@pytest.fixture
def renderer():
    return MapRenderer(width_m=600.0, height_m=600.0, pixels=600)


class TestMapRenderer:
    def test_empty_map_is_valid_svg(self, renderer):
        svg = renderer.to_svg()
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")

    def test_scaling_and_flip(self, renderer):
        # World (0, 0) maps to bottom-left = pixel (0, height).
        assert renderer._px(Point(0.0, 0.0)) == (0.0, 600.0)
        assert renderer._px(Point(600.0, 600.0)) == (600.0, 0.0)

    def test_access_point_rendered(self, renderer):
        renderer.add_access_point(Point(100.0, 100.0), label="ap-1")
        svg = renderer.to_svg()
        assert "ap-1" in svg
        assert "<circle" in svg

    def test_coverage_disc_optional(self, renderer):
        renderer.add_access_point(Point(100.0, 100.0),
                                  coverage_radius_m=50.0)
        assert 'fill-opacity="0.08"' in renderer.to_svg()

    def test_tag_colors(self, renderer):
        renderer.add_true_position(Point(10.0, 10.0))
        renderer.add_estimate(Point(20.0, 20.0))
        svg = renderer.to_svg()
        assert COLOR_TRUE in svg
        assert COLOR_ESTIMATE in svg

    def test_track_polyline(self, renderer):
        renderer.add_track([Point(0, 0), Point(10, 10), Point(20, 5)])
        assert "<polyline" in renderer.to_svg()

    def test_single_point_track_skipped(self, renderer):
        renderer.add_track([Point(0, 0)])
        assert "<polyline" not in renderer.to_svg()

    def test_labels_escaped(self, renderer):
        renderer.add_access_point(Point(1.0, 1.0), label="<evil&ssid>")
        svg = renderer.to_svg()
        assert "<evil" not in svg
        assert "&lt;evil&amp;ssid&gt;" in svg

    def test_sniffer_marker(self, renderer):
        renderer.add_sniffer(Point(300.0, 300.0))
        assert "<rect" in renderer.to_svg()

    def test_validation(self):
        with pytest.raises(ValueError):
            MapRenderer(width_m=0.0, height_m=100.0)


class TestHtmlMap:
    def test_page_structure(self, renderer):
        renderer.add_estimate(Point(5.0, 5.0))
        page = render_html_map(renderer, title="Test Map",
                               caption="hello world")
        assert page.startswith("<!DOCTYPE html>")
        assert "Test Map" in page
        assert "hello world" in page
        assert "<svg" in page
        assert "real mobile" in page  # legend

    def test_writes_file(self, renderer, tmp_path):
        path = tmp_path / "map.html"
        render_html_map(renderer, output_path=path)
        assert path.exists()
        assert "<svg" in path.read_text()

    def test_title_escaped(self, renderer):
        page = render_html_map(renderer, title="<script>")
        assert "<script>" not in page
