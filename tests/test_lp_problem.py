"""LpProblem modeling-layer tests, including backend agreement."""

import pytest

from repro.lp.problem import LpProblem


def build_sample_problem() -> LpProblem:
    problem = LpProblem(maximize=True)
    x = problem.add_variable("x", low=0.0, up=10.0)
    y = problem.add_variable("y", low=0.0, up=10.0)
    problem.add_constraint({x: 1.0, y: 2.0}, "<=", 4.0)
    problem.add_constraint({x: 3.0, y: 1.0}, "<=", 6.0)
    problem.set_objective({x: 1.0, y: 1.0})
    return problem


class TestModeling:
    def test_counters(self):
        problem = build_sample_problem()
        assert problem.num_variables == 2
        assert problem.num_constraints == 2

    def test_invalid_bounds(self):
        problem = LpProblem()
        with pytest.raises(ValueError):
            problem.add_variable("x", low=5.0, up=1.0)

    def test_invalid_sense(self):
        problem = LpProblem()
        x = problem.add_variable("x")
        with pytest.raises(ValueError):
            problem.add_constraint({x: 1.0}, "<", 1.0)

    def test_unknown_variable_in_constraint(self):
        problem = LpProblem()
        problem.add_variable("x")
        with pytest.raises(IndexError):
            problem.add_constraint({5: 1.0}, "<=", 1.0)

    def test_unknown_variable_in_objective(self):
        problem = LpProblem()
        with pytest.raises(IndexError):
            problem.set_objective({0: 1.0})

    def test_unknown_solver(self):
        problem = build_sample_problem()
        with pytest.raises(ValueError):
            problem.solve(solver="gurobi")


class TestSolving:
    def test_simplex_backend(self):
        result = build_sample_problem().solve(solver="simplex")
        assert result.is_optimal
        assert result.objective == pytest.approx(2.8)

    def test_scipy_backend(self):
        result = build_sample_problem().solve(solver="scipy")
        assert result.is_optimal
        assert result.objective == pytest.approx(2.8)

    def test_backends_agree(self):
        ours = build_sample_problem().solve(solver="simplex")
        scipy_result = build_sample_problem().solve(solver="scipy")
        assert ours.objective == pytest.approx(scipy_result.objective)

    def test_value_accessor(self):
        problem = build_sample_problem()
        result = problem.solve()
        assert problem.value(result, 0) == pytest.approx(1.6)
        assert problem.value(result, 1) == pytest.approx(1.2)

    def test_value_on_failed_solve_raises(self):
        problem = LpProblem(maximize=True)
        x = problem.add_variable("x", low=0.0)  # unbounded above
        problem.set_objective({x: 1.0})
        result = problem.solve()
        assert not result.is_optimal
        with pytest.raises(ValueError):
            problem.value(result, 0)

    def test_equality_and_geq_mix(self):
        problem = LpProblem()
        x = problem.add_variable("x", low=0.0, up=10.0)
        y = problem.add_variable("y", low=0.0, up=10.0)
        problem.add_constraint({x: 1.0, y: 1.0}, "==", 6.0)
        problem.add_constraint({x: 1.0}, ">=", 2.0)
        problem.set_objective({y: 1.0})  # minimize y
        for solver in ("simplex", "scipy"):
            result = problem.solve(solver=solver)
            assert result.is_optimal
            assert result.x[0] + result.x[1] == pytest.approx(6.0)
            assert result.objective == pytest.approx(0.0, abs=1e-9)
            assert result.x[0] == pytest.approx(6.0)


class TestRaiseOnFailure:
    def test_infeasible_raises_typed_error(self):
        from repro.faults import InfeasibleError

        problem = LpProblem()
        x = problem.add_variable("x", low=0.0, up=10.0)
        problem.add_constraint({x: 1.0}, ">=", 3.0)
        problem.add_constraint({x: 1.0}, "<=", 1.0)
        problem.set_objective({x: 1.0})
        with pytest.raises(InfeasibleError):
            problem.solve(raise_on_failure=True)

    def test_unbounded_raises_typed_error(self):
        from repro.faults import UnboundedError

        problem = LpProblem(maximize=True)
        x = problem.add_variable("x", low=0.0)
        problem.set_objective({x: 1.0})
        with pytest.raises(UnboundedError):
            problem.solve(raise_on_failure=True)

    def test_typed_errors_are_runtime_errors(self):
        from repro.faults import SolverError

        problem = LpProblem(maximize=True)
        x = problem.add_variable("x", low=0.0)
        problem.set_objective({x: 1.0})
        with pytest.raises(RuntimeError) as excinfo:
            problem.solve(solver="revised", raise_on_failure=True)
        assert isinstance(excinfo.value, SolverError)
        assert excinfo.value.status == "unbounded"

    def test_default_returns_status_result(self):
        problem = LpProblem()
        x = problem.add_variable("x", low=0.0, up=10.0)
        problem.add_constraint({x: 1.0}, ">=", 3.0)
        problem.add_constraint({x: 1.0}, "<=", 1.0)
        problem.set_objective({x: 1.0})
        result = problem.solve()
        assert not result.is_optimal
        assert result.status == "infeasible"
