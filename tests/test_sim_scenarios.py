"""Scenario-builder tests."""

import numpy as np
import pytest

from repro.sim.scenarios import (
    build_attack_scenario,
    build_disc_model_experiment,
)


class TestAttackScenario:
    def test_builds_and_runs(self):
        scenario = build_attack_scenario(seed=3, ap_count=40,
                                         area_m=400.0, bystander_count=4)
        scenario.world.run(duration_s=90.0)
        store = scenario.world.sniffer.store
        assert store.frame_count > 0
        assert scenario.victim.mac in store.seen_mobiles

    def test_deterministic(self):
        def run(seed):
            scenario = build_attack_scenario(seed=seed, ap_count=30,
                                             area_m=300.0,
                                             bystander_count=3)
            scenario.world.run(duration_s=60.0)
            return scenario.world.sniffer.store.frame_count

        assert run(5) == run(5)

    def test_victim_walks_route(self):
        scenario = build_attack_scenario(seed=3, ap_count=30,
                                         area_m=400.0, bystander_count=2)
        start = scenario.victim.position
        scenario.world.run(duration_s=120.0)
        assert scenario.victim.position.distance_to(start) > 50.0


class TestDiscModelExperiment:
    @pytest.fixture(scope="class")
    def experiment(self):
        return build_disc_model_experiment(seed=11, ap_count=150,
                                           area_m=400.0, case_count=40,
                                           extra_corpus=150)

    def test_shapes(self, experiment):
        assert len(experiment.truth_db) == 150
        assert len(experiment.mloc_db) == 150
        assert len(experiment.location_db) == 150
        assert len(experiment.cases) == 40
        assert len(experiment.corpus) >= 40

    def test_cases_have_evidence(self, experiment):
        assert all(case.observed for case in experiment.cases)

    def test_location_db_has_no_ranges(self, experiment):
        assert all(r.max_range_m is None for r in experiment.location_db)

    def test_mloc_db_ranges_near_truth(self, experiment):
        ratios = []
        for record in experiment.mloc_db:
            truth = experiment.truth_db.get(record.bssid)
            ratios.append(record.max_range_m / truth.max_range_m)
        assert 1.0 < np.mean(ratios) < 1.25  # overestimate bias

    def test_positions_noisy_but_close(self, experiment):
        shifts = []
        for record in experiment.location_db:
            truth = experiment.truth_db.get(record.bssid)
            shifts.append(record.location.distance_to(truth.location))
        assert 0.0 < np.mean(shifts) < 10.0

    def test_gamma_is_subset_of_truth(self, experiment):
        for case in experiment.cases[:10]:
            true_gamma = experiment.truth_db.observable_from(case.truth)
            assert set(case.observed) <= true_gamma

    def test_deterministic(self):
        a = build_disc_model_experiment(seed=4, ap_count=60,
                                        area_m=300.0, case_count=10,
                                        extra_corpus=20)
        b = build_disc_model_experiment(seed=4, ap_count=60,
                                        area_m=300.0, case_count=10,
                                        extra_corpus=20)
        assert [c.truth for c in a.cases] == [c.truth for c in b.cases]
        assert [c.observed for c in a.cases] == [c.observed for c in b.cases]

    def test_make_aprad_wired(self, experiment):
        aprad = experiment.make_aprad()
        assert aprad.min_evidence == experiment.aprad_min_evidence
        assert aprad.overestimate_factor == experiment.aprad_overestimate
        assert aprad.r_max == experiment.r_max
