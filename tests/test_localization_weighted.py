"""Weighted-centroid baseline tests."""

import pytest

from repro.geometry.point import Point
from repro.knowledge.apdb import ApDatabase
from repro.localization import (
    CentroidLocalizer,
    MLoc,
    WeightedCentroidLocalizer,
)
from repro.net80211.mac import MacAddress

from tests.helpers import make_record


class TestWeightedCentroid:
    def test_equal_radii_equals_plain_centroid(self, square_db):
        weighted = WeightedCentroidLocalizer(square_db).locate(
            square_db.bssids)
        plain = CentroidLocalizer(square_db).locate(square_db.bssids)
        assert weighted.position.is_close(plain.position, tol=1e-9)

    def test_small_radius_ap_dominates(self):
        db = ApDatabase([make_record(0, 0.0, 0.0, 10.0),
                         make_record(1, 100.0, 0.0, 100.0)])
        estimate = WeightedCentroidLocalizer(db).locate(db.bssids)
        # Weight 1/10 vs 1/100: pulled strongly toward the short-range AP.
        assert estimate.position.x == pytest.approx(100.0 / 11.0, rel=1e-6)

    def test_power_zero_is_unweighted(self):
        db = ApDatabase([make_record(0, 0.0, 0.0, 10.0),
                         make_record(1, 100.0, 0.0, 100.0)])
        estimate = WeightedCentroidLocalizer(db, power=0.0).locate(
            db.bssids)
        assert estimate.position.x == pytest.approx(50.0)

    def test_fallback_radius(self):
        db = ApDatabase([make_record(0, 0.0, 0.0),
                         make_record(1, 100.0, 0.0, 50.0)])
        estimate = WeightedCentroidLocalizer(
            db, fallback_range_m=50.0).locate(db.bssids)
        assert estimate.used_ap_count == 2

    def test_records_without_radius_skipped(self):
        db = ApDatabase([make_record(0, 0.0, 0.0),
                         make_record(1, 100.0, 0.0, 50.0)])
        estimate = WeightedCentroidLocalizer(db).locate(db.bssids)
        assert estimate.used_ap_count == 1
        assert estimate.position == Point(100.0, 0.0)

    def test_no_usable_records_returns_none(self):
        db = ApDatabase([make_record(0, 0.0, 0.0)])
        assert WeightedCentroidLocalizer(db).locate(db.bssids) is None
        assert WeightedCentroidLocalizer(db).locate(
            {MacAddress(0xDEAD)}) is None

    def test_validation(self, square_db):
        with pytest.raises(ValueError):
            WeightedCentroidLocalizer(square_db, power=-1.0)

    def test_sits_between_centroid_and_mloc_on_campus(self):
        """The literature's expectation: weighting helps over plain
        averaging, but the disc intersection still wins."""
        from repro.analysis import run_localization_experiment
        from repro.sim.scenarios import build_disc_model_experiment

        exp = build_disc_model_experiment(seed=29, ap_count=220,
                                          area_m=400.0, case_count=50,
                                          extra_corpus=100)
        reports = run_localization_experiment(
            {"m-loc": MLoc(exp.mloc_db),
             "weighted": WeightedCentroidLocalizer(exp.mloc_db),
             "centroid": CentroidLocalizer(exp.location_db)},
            exp.cases)
        assert (reports["m-loc"].mean_error()
                < reports["weighted"].mean_error()
                <= reports["centroid"].mean_error() + 1.0)
