"""Seeded RNG helper tests: determinism and stream independence."""

import numpy as np
import pytest

from repro.numerics.rng import make_rng, spawn_rngs


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42)
        b = make_rng(42)
        assert a.integers(0, 1000) == b.integers(0, 1000)

    def test_different_seeds_differ(self):
        draws_a = make_rng(1).integers(0, 2**31, size=8)
        draws_b = make_rng(2).integers(0, 2**31, size=8)
        assert not np.array_equal(draws_a, draws_b)

    def test_passthrough_generator(self):
        generator = np.random.default_rng(7)
        assert make_rng(generator) is generator

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(5, 4)) == 4

    def test_zero_count(self):
        assert spawn_rngs(5, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(5, -1)

    def test_children_deterministic(self):
        first = [r.integers(0, 2**31) for r in spawn_rngs(9, 3)]
        second = [r.integers(0, 2**31) for r in spawn_rngs(9, 3)]
        assert first == second

    def test_children_independent(self):
        children = spawn_rngs(11, 2)
        draws = [child.integers(0, 2**31, size=16) for child in children]
        assert not np.array_equal(draws[0], draws[1])

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(3), 2)
        assert len(children) == 2
        assert all(isinstance(c, np.random.Generator) for c in children)
