"""7-day population model tests (Figs 10-11)."""

import numpy as np
import pytest

from repro.sim.population import (
    DayStats,
    PopulationConfig,
    WEEK_LABELS,
    simulate_week,
    weekly_summary,
)


@pytest.fixture
def week(rng):
    return simulate_week(PopulationConfig(), rng)


class TestCalendar:
    def test_seven_days(self, week):
        assert len(week) == 7
        assert [d.label for d in week] == [label for label, _ in WEEK_LABELS]

    def test_oct_25_is_saturday(self):
        # The paper's 91.61% peak day was Oct 25, 2008 — a Saturday.
        labels = dict(WEEK_LABELS)
        assert labels["Oct 25"] == "Sat"
        assert labels["Oct 24"] == "Fri"

    def test_weekend_flag(self, week):
        weekend_days = [d.label for d in week if d.is_weekend]
        assert weekend_days == ["Oct 25", "Oct 26"]


class TestPaperObservations:
    def test_more_mobiles_on_weekdays(self, week):
        summary = weekly_summary(week)
        assert (summary["mean_weekday_mobiles"]
                > 2.0 * summary["mean_weekend_mobiles"])

    def test_all_days_above_50_percent(self, week):
        # "In each day, the percentage of probing mobiles within all
        # found mobiles is above 50%."
        for day in week:
            assert day.probing_percentage > 50.0

    def test_weekend_percentage_higher(self, week):
        weekday_pct = np.mean([d.probing_percentage for d in week
                               if not d.is_weekend])
        weekend_pct = np.mean([d.probing_percentage for d in week
                               if d.is_weekend])
        assert weekend_pct > weekday_pct

    def test_peak_is_high(self, week):
        # Peak around the paper's 91.61%.
        assert max(d.probing_percentage for d in week) > 80.0

    def test_probing_never_exceeds_found(self, week):
        for day in week:
            assert 0 <= day.probing_mobiles <= day.found_mobiles


class TestActiveAttackAblation:
    def test_active_attack_raises_percentages(self):
        config = PopulationConfig()
        passive = simulate_week(config, np.random.default_rng(1))
        active = simulate_week(config, np.random.default_rng(1),
                               active_attack=True)
        passive_mean = np.mean([d.probing_percentage for d in passive])
        active_mean = np.mean([d.probing_percentage for d in active])
        assert active_mean > passive_mean

    def test_active_attack_does_not_change_found(self):
        config = PopulationConfig()
        passive = simulate_week(config, np.random.default_rng(1))
        active = simulate_week(config, np.random.default_rng(1),
                               active_attack=True)
        assert [d.found_mobiles for d in passive] == \
            [d.found_mobiles for d in active]


class TestConfig:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            PopulationConfig(weekday_probing_prob=1.5)
        with pytest.raises(ValueError):
            PopulationConfig(detection_prob=-0.1)

    def test_population_validation(self):
        with pytest.raises(ValueError):
            PopulationConfig(weekday_mobiles_mean=0.0)

    def test_deterministic_given_seed(self):
        config = PopulationConfig()
        a = simulate_week(config, np.random.default_rng(9))
        b = simulate_week(config, np.random.default_rng(9))
        assert [(d.found_mobiles, d.probing_mobiles) for d in a] == \
            [(d.found_mobiles, d.probing_mobiles) for d in b]

    def test_empty_day_percentage(self):
        day = DayStats("x", "Mon", found_mobiles=0, probing_mobiles=0)
        assert day.probing_percentage == 0.0
