"""repro.obs tracing: span nesting, ring bounds, Chrome export."""

import json

import pytest

from repro import obs
from repro.obs import SpanRecorder, trace, use_recorder


class TestSpans:
    def test_trace_records_a_completed_span(self):
        recorder = SpanRecorder()
        with trace("unit.op", recorder=recorder, batch=3) as span:
            assert span.name == "unit.op"
        spans = recorder.spans()
        assert len(spans) == 1
        assert spans[0].args == {"batch": 3}
        assert spans[0].duration_s >= 0.0
        assert spans[0].parent_id is None

    def test_nested_spans_record_parents(self):
        recorder = SpanRecorder()
        with use_recorder(recorder):
            with trace("outer") as outer:
                with trace("inner"):
                    pass
        inner, outer_done = recorder.spans()
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer_done.name == "outer"

    def test_span_records_even_when_body_raises(self):
        recorder = SpanRecorder()
        with pytest.raises(RuntimeError):
            with trace("unit.fail", recorder=recorder):
                raise RuntimeError("boom")
        assert len(recorder) == 1


class TestRecorder:
    def test_ring_is_bounded(self):
        recorder = SpanRecorder(capacity=4)
        for index in range(10):
            with trace(f"op-{index}", recorder=recorder):
                pass
        names = [span.name for span in recorder.spans()]
        assert names == ["op-6", "op-7", "op-8", "op-9"]

    def test_zero_capacity_disables_tracing(self):
        recorder = SpanRecorder(capacity=0)
        assert not recorder.enabled
        with trace("op", recorder=recorder) as span:
            assert span is None
        assert len(recorder) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=-1)

    def test_use_recorder_routes_and_restores(self):
        mine = SpanRecorder()
        with use_recorder(mine):
            assert obs.current_recorder() is mine
            with trace("routed"):
                pass
        assert obs.current_recorder() is obs.default_recorder()
        assert [span.name for span in mine.spans()] == ["routed"]

    def test_clear_empties_the_ring(self):
        recorder = SpanRecorder()
        with trace("op", recorder=recorder):
            pass
        recorder.clear()
        assert len(recorder) == 0


class TestChromeExport:
    def test_export_shape(self, tmp_path):
        recorder = SpanRecorder()
        with use_recorder(recorder):
            with trace("outer", batch=2):
                with trace("inner"):
                    pass
        path = tmp_path / "trace.json"
        recorder.export_chrome(path)
        data = json.loads(path.read_text())
        assert data["displayTimeUnit"] == "ms"
        events = data["traceEvents"]
        assert [event["name"] for event in events] == ["outer", "inner"]
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0
        outer, inner = events
        assert outer["args"]["batch"] == 2
        assert inner["args"]["parent_span"] == outer["args"]["span"]

    def test_empty_recorder_exports_empty_trace(self, tmp_path):
        recorder = SpanRecorder()
        path = tmp_path / "empty.json"
        recorder.export_chrome(path)
        assert json.loads(path.read_text())["traceEvents"] == []
