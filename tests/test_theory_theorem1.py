"""Theorem 1 analysis tests."""

import pytest

from repro.theory.theorem1 import (
    coverage_improvement_factor,
    lna_noise_figure_improvement_db,
    theorem1_max_distance_m,
)


class TestMaxDistance:
    def test_paper_configuration(self):
        """The deployed chain's free-space bound is kilometers — the
        paper measured ~1000 m limited by terrain, below this bound."""
        distance = theorem1_max_distance_m(
            receiver_gain_dbi=15.0, noise_figure_db=1.5, snr_min_db=10.0,
            tx_power_dbm=15.0, tx_gain_dbi=0.0, frequency_hz=2.437e9,
            bandwidth_hz=22e6)
        assert distance > 1000.0

    def test_matches_link_budget_module(self):
        from repro.radio.link_budget import Transmitter, coverage_radius_m

        via_theory = theorem1_max_distance_m(15.0, 1.5, 10.0, 15.0, 0.0,
                                             2.437e9, 22e6)
        via_budget = coverage_radius_m(
            15.0, 1.5, 10.0,
            Transmitter(15.0, 0.0, 2.437e9), 22e6)
        assert via_theory == pytest.approx(via_budget)

    def test_monotone_in_every_favorable_parameter(self):
        base = dict(receiver_gain_dbi=15.0, noise_figure_db=4.0,
                    snr_min_db=10.0, tx_power_dbm=15.0, tx_gain_dbi=0.0,
                    frequency_hz=2.437e9, bandwidth_hz=22e6)
        reference = theorem1_max_distance_m(**base)
        assert theorem1_max_distance_m(
            **{**base, "receiver_gain_dbi": 18.0}) > reference
        assert theorem1_max_distance_m(
            **{**base, "noise_figure_db": 1.5}) > reference
        assert theorem1_max_distance_m(
            **{**base, "snr_min_db": 8.0}) > reference
        assert theorem1_max_distance_m(
            **{**base, "tx_power_dbm": 20.0}) > reference
        assert theorem1_max_distance_m(
            **{**base, "bandwidth_hz": 11e6}) > reference


class TestRequiredGain:
    def test_inverts_coverage_radius(self):
        from repro.theory.theorem1 import required_receiver_gain_dbi

        params = dict(noise_figure_db=1.5, snr_min_db=10.0,
                      tx_power_dbm=15.0, tx_gain_dbi=0.0,
                      frequency_hz=2.437e9, bandwidth_hz=22e6)
        gain = required_receiver_gain_dbi(1000.0, **params)
        # Plug the gain back in: the radius comes out at 1000 m.
        radius = theorem1_max_distance_m(receiver_gain_dbi=gain, **params)
        assert radius == pytest.approx(1000.0, rel=1e-9)

    def test_larger_radius_needs_more_gain(self):
        from repro.theory.theorem1 import required_receiver_gain_dbi

        params = dict(noise_figure_db=4.0, snr_min_db=10.0,
                      tx_power_dbm=15.0, tx_gain_dbi=0.0,
                      frequency_hz=2.437e9, bandwidth_hz=22e6)
        assert (required_receiver_gain_dbi(2000.0, **params)
                - required_receiver_gain_dbi(1000.0, **params)
                == pytest.approx(20.0 * 0.30103, abs=1e-3))  # 6 dB per 2x

    def test_validation(self):
        from repro.theory.theorem1 import required_receiver_gain_dbi

        with pytest.raises(ValueError):
            required_receiver_gain_dbi(0.0, noise_figure_db=1.5,
                                       snr_min_db=10.0, tx_power_dbm=15.0,
                                       tx_gain_dbi=0.0,
                                       frequency_hz=2.437e9,
                                       bandwidth_hz=22e6)


class TestLnaAnalysis:
    def test_paper_improvement_range(self):
        # "A common WNIC has a noise figure around 4.0 ~ 6.0 dB and the
        # LNA in our experiment is 1.5 dB.  We have a noise figure
        # improvement of 2.5 ~ 4.5 dB."
        assert lna_noise_figure_improvement_db(4.0, 1.5) == pytest.approx(2.5)
        assert lna_noise_figure_improvement_db(6.0, 1.5) == pytest.approx(4.5)

    def test_coverage_improvement_factor(self):
        assert coverage_improvement_factor(0.0) == 1.0
        assert coverage_improvement_factor(20.0) == pytest.approx(10.0)
        assert coverage_improvement_factor(6.0) == pytest.approx(
            1.995, abs=0.01)

    def test_lna_buys_33_to_68_percent_radius(self):
        low = coverage_improvement_factor(2.5)
        high = coverage_improvement_factor(4.5)
        assert low == pytest.approx(1.33, abs=0.01)
        assert high == pytest.approx(1.68, abs=0.01)
