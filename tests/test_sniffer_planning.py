"""Channel-planning tests."""

import pytest

from repro.sniffer.planning import (
    coverage_of,
    hopping_capture_probability,
    plan_channels,
)

#: A UML-like measured histogram (Fig 8 shape).
CAMPUS_HISTOGRAM = {1: 137, 2: 2, 3: 2, 4: 6, 5: 4, 6: 194, 7: 6,
                    8: 3, 9: 8, 10: 4, 11: 134}


class TestPlanChannels:
    def test_three_cards_pick_1_6_11(self):
        # The paper's decision, derived automatically.
        plan = plan_channels(CAMPUS_HISTOGRAM, cards=3)
        assert plan.channels == (1, 6, 11)
        assert plan.covered_fraction == pytest.approx(465 / 500)

    def test_one_card_picks_channel_6(self):
        plan = plan_channels(CAMPUS_HISTOGRAM, cards=1)
        assert plan.channels == (6,)

    def test_more_cards_never_reduce_coverage(self):
        coverages = [plan_channels(CAMPUS_HISTOGRAM, cards=k)
                     .covered_fraction for k in range(1, 12)]
        assert coverages == sorted(coverages)
        assert coverages[-1] == pytest.approx(1.0)

    def test_tie_breaks_to_lower_channel(self):
        plan = plan_channels({1: 10, 6: 10, 11: 10}, cards=1)
        assert plan.channels == (1,)

    def test_describe(self):
        plan = plan_channels(CAMPUS_HISTOGRAM, cards=3)
        text = plan.describe()
        assert "1, 6, 11" in text
        assert "%" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_channels(CAMPUS_HISTOGRAM, cards=0)
        with pytest.raises(ValueError):
            plan_channels({14: 3}, cards=1)
        with pytest.raises(ValueError):
            plan_channels({}, cards=1)


class TestCoverageOf:
    def test_paper_numbers(self):
        share = coverage_of(CAMPUS_HISTOGRAM, (1, 6, 11))
        assert share == pytest.approx(0.93, abs=0.01)

    def test_refuted_369_plan(self):
        # The "channels 3/6/9 cover everything" belief: with decode
        # limited to the tuned channel, it covers only 40.8%.
        share = coverage_of(CAMPUS_HISTOGRAM, (3, 6, 9))
        assert share < 0.45

    def test_empty_histogram(self):
        with pytest.raises(ValueError):
            coverage_of({}, (1,))


class TestHoppingProbability:
    def test_feasibility_study_configuration(self):
        # 4 s dwell over 11 channels: one burst is caught ~10% of the
        # time; over a day of 60 s scans (1440 bursts) detection is
        # essentially certain — the 7-day study's premise.
        single = hopping_capture_probability(4.0, 44.0)
        assert single == pytest.approx(4.5 / 44.0)
        day = hopping_capture_probability(4.0, 44.0, bursts=1440)
        assert day > 0.999999

    def test_monotone_in_bursts(self):
        values = [hopping_capture_probability(4.0, 44.0, bursts=b)
                  for b in (1, 5, 20, 100)]
        assert values == sorted(values)

    def test_full_dwell_is_certain(self):
        assert hopping_capture_probability(44.0, 44.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            hopping_capture_probability(0.0, 44.0)
        with pytest.raises(ValueError):
            hopping_capture_probability(50.0, 44.0)
        with pytest.raises(ValueError):
            hopping_capture_probability(4.0, 44.0, bursts=0)
