"""Γ-set memoization cache tests, and the localizer cache-key hook."""

import pytest

from repro.engine import GammaCache
from repro.geometry.point import Point
from repro.localization import CentroidLocalizer, MLoc
from repro.localization.base import LocalizationEstimate
from repro.net80211.mac import MacAddress

from tests.helpers import make_record


def gamma(*indices):
    return frozenset(MacAddress(0x001B63000000 + i) for i in indices)


def estimate_at(x, y):
    return LocalizationEstimate(position=Point(x, y), algorithm="test")


class TestGammaCache:
    def test_hit_miss_counters(self):
        cache = GammaCache(max_entries=8)
        assert cache.get("m-loc", gamma(1, 2)) is GammaCache.ABSENT
        cache.put("m-loc", gamma(1, 2), estimate_at(1.0, 2.0))
        hit = cache.get("m-loc", gamma(2, 1))  # set order irrelevant
        assert hit is not GammaCache.ABSENT
        assert hit.position.is_close(Point(1.0, 2.0))
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_distinct_localizer_keys_do_not_collide(self):
        cache = GammaCache()
        cache.put("m-loc", gamma(1), estimate_at(0.0, 0.0))
        assert cache.get("centroid", gamma(1)) is GammaCache.ABSENT

    def test_none_results_are_cached(self):
        cache = GammaCache()
        cache.put("m-loc", gamma(7), None)
        assert cache.get("m-loc", gamma(7)) is None
        assert cache.hits == 1

    def test_lru_eviction(self):
        cache = GammaCache(max_entries=2)
        cache.put("k", gamma(1), estimate_at(1, 1))
        cache.put("k", gamma(2), estimate_at(2, 2))
        cache.get("k", gamma(1))  # refresh 1: it survives
        cache.put("k", gamma(3), estimate_at(3, 3))
        assert cache.evictions == 1
        assert cache.get("k", gamma(2)) is GammaCache.ABSENT
        assert cache.get("k", gamma(1)) is not GammaCache.ABSENT
        assert len(cache) == 2

    def test_invalidate_clears_entries_not_history(self):
        cache = GammaCache()
        cache.put("k", gamma(1), estimate_at(1, 1))
        cache.get("k", gamma(1))
        cache.invalidate()
        assert len(cache) == 0
        assert cache.hits == 1
        assert cache.invalidations == 1
        assert cache.get("k", gamma(1)) is GammaCache.ABSENT

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            GammaCache(max_entries=0)


class TestLocalizerCacheKey:
    def test_default_key_is_the_name(self, square_db):
        assert MLoc(square_db).cache_key() == "m-loc"
        assert CentroidLocalizer(square_db).cache_key() == "centroid"

    def test_aprad_key_changes_on_refit(self, square_db):
        from repro.localization import APRad

        aprad = APRad(square_db.without_ranges(), r_max=150.0,
                      solver="scipy")
        corpus = [set(square_db.bssids)]
        key_before = aprad.cache_key()
        aprad.fit(corpus)
        key_after_fit = aprad.cache_key()
        aprad.fit(corpus)
        assert key_before != key_after_fit
        assert aprad.cache_key() != key_after_fit
        assert aprad.name in key_after_fit

    def test_experiment_accepts_plain_localizer_sequence(self, square_db):
        from repro.analysis.experiments import (
            TestCase,
            run_localization_experiment,
        )

        cases = [TestCase.of(set(square_db.bssids), Point(50.0, 50.0))]
        reports = run_localization_experiment(
            [MLoc(square_db), CentroidLocalizer(square_db)], cases)
        assert set(reports) == {"m-loc", "centroid"}

    def test_experiment_rejects_duplicate_names(self, square_db):
        from repro.analysis.experiments import (
            TestCase,
            run_localization_experiment,
        )

        cases = [TestCase.of(set(square_db.bssids), Point(50.0, 50.0))]
        with pytest.raises(ValueError):
            run_localization_experiment(
                [MLoc(square_db), MLoc(square_db)], cases)
