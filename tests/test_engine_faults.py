"""Engine fault tolerance: retries, quarantine, degraded flushes, sinks."""

from concurrent.futures import TimeoutError as FutureTimeoutError

import pytest

from repro.engine import StreamingEngine
from repro.engine.sinks import EngineSink
from repro.faults import (
    FaultInjector,
    FaultSpec,
    RetryPolicy,
    SinkError,
    WorkerSupervisor,
    use_injector,
)
from repro.localization import MLoc, make_localizer

from tests.test_engine_checkpoint import build_stream, station


def fast_retry(attempts=3):
    return RetryPolicy(max_attempts=attempts, base_delay=0.01,
                       sleep=lambda s: None)


class RecordingSink(EngineSink):
    def __init__(self, fail_first=0, error=SinkError):
        self.fail_first = fail_first
        self.error = error
        self.attempts = 0
        self.emitted = []

    def emit(self, mobile, timestamp, estimate):
        self.attempts += 1
        if self.attempts <= self.fail_first:
            raise self.error(f"sink attempt {self.attempts}")
        self.emitted.append((mobile, timestamp))

    def close(self):
        pass


class TestSinkSupervision:
    def test_transient_sink_failures_are_retried(self, square_db):
        sink = RecordingSink(fail_first=2)
        engine = StreamingEngine(MLoc(square_db), batch_size=3,
                                 sinks=[sink], retry=fast_retry(3))
        engine.run(iter(build_stream(square_db, devices=2, rounds=1)))
        stats = engine.stats()
        assert stats.retries == 2
        assert stats.sink_failures == 0
        # Every estimate was delivered exactly once despite the retries.
        assert len(sink.emitted) == stats.estimates_emitted

    def test_permanent_sink_failure_never_kills_the_run(self, square_db):
        sink = RecordingSink(fail_first=10 ** 9)
        engine = StreamingEngine(MLoc(square_db), batch_size=3,
                                 sinks=[sink], retry=fast_retry(2))
        stats = engine.run(
            iter(build_stream(square_db, devices=2, rounds=1)))
        assert stats.sink_failures == stats.estimates_emitted > 0
        assert sink.emitted == []
        # The built-in tracker is not a sink: tracks survive sink loss.
        assert len(engine.tracker.devices()) == 2

    def test_non_repro_sink_exceptions_also_contained(self, square_db):
        sink = RecordingSink(fail_first=10 ** 9, error=RuntimeError)
        engine = StreamingEngine(MLoc(square_db), batch_size=3,
                                 sinks=[sink], retry=fast_retry(2))
        stats = engine.run(
            iter(build_stream(square_db, devices=2, rounds=1)))
        assert stats.sink_failures > 0


class TestQuarantine:
    def test_poison_device_quarantined_without_stalling_others(
            self, square_db):
        poison = str(station(1))
        injector = FaultInjector([
            # Every batch attempt fails, forcing the degraded path ...
            FaultSpec("engine.flush", mode="raise"),
            # ... where only the poison device keeps failing.
            FaultSpec("engine.localize", mode="raise",
                      error="SolverError", match=poison),
        ])
        engine = StreamingEngine(MLoc(square_db), batch_size=3,
                                 retry=fast_retry(2), quarantine_after=3)
        with use_injector(injector):
            stats = engine.run(
                iter(build_stream(square_db, devices=3, rounds=1)))
        assert stats.quarantined == 1
        assert list(engine.quarantined()) == [station(1)]
        assert "SolverError" in engine.quarantined()[station(1)]
        # The healthy neighbors were still localized and tracked.
        tracked = set(engine.tracker.devices())
        assert station(0) in tracked and station(2) in tracked
        assert station(1) not in tracked
        assert stats.degraded > 0

    def test_quarantined_device_not_rescheduled_on_new_evidence(
            self, square_db):
        poison = str(station(0))
        injector = FaultInjector([
            FaultSpec("engine.flush", mode="raise"),
            FaultSpec("engine.localize", mode="raise",
                      error="SolverError", match=poison),
        ])
        engine = StreamingEngine(MLoc(square_db), batch_size=2,
                                 retry=fast_retry(2), quarantine_after=2)
        frames = build_stream(square_db, devices=1, rounds=2)
        # Round 1 for the single device is its probe request plus one
        # probe response per AP.
        round_one = 1 + len(list(square_db))

        def failure_count():
            return int(engine.registry.counter(
                "repro.engine.localize.failures",
                error="SolverError").value)

        with use_injector(injector):
            engine.ingest_stream(frames[:round_one])
            engine.flush()
            condemned_at = failure_count()
            assert engine.stats().quarantined == 1
            # Round 2 changes the device's Γ — but quarantine wins.
            engine.ingest_stream(frames[round_one:])
            engine.flush()
        assert failure_count() == condemned_at == 2

    def test_quarantine_state_survives_checkpoint(self, square_db):
        engine = StreamingEngine(MLoc(square_db), quarantine_after=2)
        engine._quarantine[station(5)] = "SolverError: poisoned"
        engine._failures[station(6)] = 1
        data = engine.checkpoint()
        restored = StreamingEngine.restore(data, MLoc(square_db))
        assert restored.quarantined() == {station(5):
                                          "SolverError: poisoned"}
        assert restored._failures == {station(6): 1}
        assert restored.quarantine_after == 2

    def test_quarantine_disabled_retries_only_on_new_gamma(self, square_db):
        injector = FaultInjector([
            FaultSpec("engine.flush", mode="raise"),
            FaultSpec("engine.localize", mode="raise",
                      error="SolverError"),
        ])
        engine = StreamingEngine(MLoc(square_db), batch_size=2,
                                 retry=fast_retry(2), quarantine_after=0)
        with use_injector(injector):
            stats = engine.run(
                iter(build_stream(square_db, devices=2, rounds=1)))
        # No quarantine, no estimates — but the drain loop terminated.
        assert stats.quarantined == 0
        assert stats.estimates_emitted == 0


class TestRefitSupervision:
    def test_failed_refit_keeps_engine_alive(self, square_db):
        localizer = make_localizer("ap-rad:r_max=150,solver=revised",
                                   database=square_db)
        injector = FaultInjector(
            [FaultSpec("lp.solve", mode="raise", error="SolverError")])
        engine = StreamingEngine(localizer, batch_size=3, refit_every=10,
                                 retry=fast_retry(2))
        with use_injector(injector):
            stats = engine.run(iter(build_stream(square_db)))
        assert stats.refits == 0
        failures = engine.registry.find("repro.engine.refit.failures")
        assert sum(int(inst.value) for inst in failures) > 0
        # Never fitted, so nothing localizable — but the stream drained.
        assert stats.frames_ingested > 0


class FakeTimeoutFuture:
    def result(self, timeout=None):
        raise FutureTimeoutError()

    def cancel(self):
        pass


class ImmediateFuture:
    def __init__(self, fn, *args):
        self._fn = fn
        self._args = args

    def result(self, timeout=None):
        return self._fn(*self._args)

    def cancel(self):
        pass


class FlakyExecutor:
    """First submission hangs (times out); the rest run inline."""

    _max_workers = 2

    def __init__(self):
        self.submissions = 0

    def submit(self, fn, *args):
        self.submissions += 1
        if self.submissions == 1:
            return FakeTimeoutFuture()
        return ImmediateFuture(fn, *args)


class TestWorkerSupervision:
    def test_chunk_timeout_redispatches_deterministically(self, square_db):
        mloc = MLoc(square_db)
        gammas = [[record.bssid for record in square_db],
                  [record.bssid for record in list(square_db)[:2]],
                  [record.bssid for record in list(square_db)[1:]]]
        expected = mloc.locate_batch(gammas)
        executor = FlakyExecutor()
        redispatches = []
        supervisor = WorkerSupervisor(
            timeout_s=0.05,
            on_failure=lambda index, error: redispatches.append(index))
        results = mloc.locate_batch(gammas, executor=executor,
                                    supervisor=supervisor)
        assert redispatches == [0]
        assert executor.submissions > 2
        assert [(e.position.x, e.position.y) for e in results] == \
            [(e.position.x, e.position.y) for e in expected]
