"""Great-circle / chord distance tests."""

import math

import pytest

from repro.geo.distance import (
    MEAN_EARTH_RADIUS_M,
    ecef_distance,
    haversine_distance,
)
from repro.geo.ecef import EcefCoordinate, geodetic_to_ecef
from repro.geo.wgs84 import GeodeticCoordinate


class TestHaversine:
    def test_zero_distance(self):
        p = GeodeticCoordinate(42.0, -71.0)
        assert haversine_distance(p, p) == 0.0

    def test_one_degree_latitude(self):
        a = GeodeticCoordinate(42.0, -71.0)
        b = GeodeticCoordinate(43.0, -71.0)
        expected = math.radians(1.0) * MEAN_EARTH_RADIUS_M
        assert haversine_distance(a, b) == pytest.approx(expected, rel=1e-9)

    def test_symmetry(self):
        a = GeodeticCoordinate(42.0, -71.0)
        b = GeodeticCoordinate(38.9, -77.0)
        assert haversine_distance(a, b) == pytest.approx(
            haversine_distance(b, a))

    def test_uml_to_gwu(self):
        # The paper's two campuses: UMass Lowell and George Washington
        # University — roughly 640 km apart.
        uml = GeodeticCoordinate(42.6555, -71.3262)
        gwu = GeodeticCoordinate(38.8997, -77.0486)
        distance = haversine_distance(uml, gwu)
        assert 600_000 < distance < 680_000

    def test_antipodal_half_circumference(self):
        a = GeodeticCoordinate(0.0, 0.0)
        b = GeodeticCoordinate(0.0, 180.0)
        assert haversine_distance(a, b) == pytest.approx(
            math.pi * MEAN_EARTH_RADIUS_M, rel=1e-9)


class TestEcefDistance:
    def test_axis_aligned(self):
        assert ecef_distance(EcefCoordinate(0, 0, 0),
                             EcefCoordinate(3, 4, 0)) == pytest.approx(5.0)

    def test_chord_below_arc(self):
        a = GeodeticCoordinate(0.0, 0.0)
        b = GeodeticCoordinate(0.0, 90.0)
        chord = ecef_distance(geodetic_to_ecef(a), geodetic_to_ecef(b))
        arc = haversine_distance(a, b)
        assert chord < arc
        # For a quarter circle, chord = R * sqrt(2) vs arc = R * pi/2.
        assert chord / arc == pytest.approx(math.sqrt(2) / (math.pi / 2),
                                            rel=0.01)
