"""Per-block bloom filters and the selective-replay fast path."""

import numpy as np
import pytest

from repro import obs
from repro.capture import BloomFilter, ColumnarReader, make_capture_writer
from repro.net80211.frames import probe_request, probe_response
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid

AP = MacAddress.parse("00:15:6d:00:00:01")


def mobile(index):
    return MacAddress(0x020000000000 + index)


def make_capture(path, mobiles, frames_per_mobile=8, block_records=16):
    """Each mobile's traffic is contiguous — later mobiles in later
    blocks, so a single-device query can skip most blocks."""
    records = []
    index = 0
    for m in range(mobiles):
        for _ in range(frames_per_mobile):
            frame = probe_request(mobile(m), channel=6,
                                  timestamp=float(index),
                                  ssid=Ssid("campus"))
            records.append(ReceivedFrame(frame, -70.0, 20.0, 6,
                                         float(index)))
            index += 1
    with make_capture_writer(path, format="columnar",
                             block_records=block_records) as writer:
        for record in records:
            writer.write(record)
    return records


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter()
        values = np.arange(1, 5001, dtype=np.uint64) * np.uint64(
            0x9E3779B97F4A7C15)
        bloom.add_many(values)
        for value in values[::97]:
            assert int(value) in bloom

    def test_false_positive_rate_bounded(self):
        """~1k keys in 32768 bits / 4 hashes → well under 5% FP."""
        bloom = BloomFilter()
        members = np.arange(0, 1000, dtype=np.uint64)
        bloom.add_many(members)
        probes = np.arange(1_000_000, 1_010_000, dtype=np.uint64)
        false_positives = sum(int(v) in bloom for v in probes)
        assert false_positives / len(probes) < 0.05

    def test_hex_roundtrip(self):
        bloom = BloomFilter(bits=256, hashes=3)
        bloom.add(12345)
        bloom.add(67890)
        clone = BloomFilter.from_hex(bloom.to_hex(), bits=256, hashes=3)
        assert 12345 in clone and 67890 in clone
        assert clone.to_hex() == bloom.to_hex()
        assert clone.fill_ratio() == bloom.fill_ratio()

    def test_add_scalar_matches_add_many(self):
        a, b = BloomFilter(bits=512, hashes=4), BloomFilter(bits=512,
                                                            hashes=4)
        values = [3, 1 << 47, (1 << 48) - 1]
        for value in values:
            a.add(value)
        b.add_many(np.array(values, dtype=np.uint64))
        assert a.to_hex() == b.to_hex()

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(bits=128, hashes=2)
        assert all(v not in bloom for v in range(100))
        assert bloom.fill_ratio() == 0.0


class TestSelectiveReplay:
    def test_device_filter_matches_bruteforce(self, tmp_path):
        path = tmp_path / "capture.cap"
        records = make_capture(path, mobiles=10)
        target = mobile(3)
        expected = [r for r in records
                    if target in (r.frame.source, r.frame.destination,
                                  r.frame.bssid)]
        reader = ColumnarReader(path, device=str(target))
        assert list(reader) == expected
        batched = [frame for batch in ColumnarReader(path).iter_batches(
                       device=str(target)) for frame in batch]
        assert batched == expected

    def test_blocks_skipped_counter_columnar(self, tmp_path):
        path = tmp_path / "capture.cap"
        make_capture(path, mobiles=10, frames_per_mobile=8,
                     block_records=16)  # 80 records → 5 blocks
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            reader = ColumnarReader(path, device=str(mobile(0)))
            found = list(reader)
        assert len(found) == 8
        skipped = registry.counter("repro.capture.blocks_skipped").value
        read = registry.counter("repro.capture.blocks_read").value
        assert skipped == 4
        assert read == 1

    def test_blocks_skipped_counter_jsonl_stays_zero(self, tmp_path):
        """JSONL cannot skip blocks; the series still exists at 0."""
        path = tmp_path / "capture.jsonl"
        with make_capture_writer(path, format="jsonl") as writer:
            for i in range(10):
                frame = probe_request(mobile(i), channel=6,
                                      timestamp=float(i),
                                      ssid=Ssid("campus"))
                writer.write(ReceivedFrame(frame, -70.0, 20.0, 6,
                                           float(i)))
        from repro.capture import JsonlReader

        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            found = list(JsonlReader(path, device=str(mobile(2))))
        assert len(found) == 1
        assert registry.counter("repro.capture.blocks_skipped").value == 0
        filtered = registry.counter("repro.capture.records_filtered").value
        assert filtered == 9

    def test_bloom_false_positive_counted(self, tmp_path):
        """A block whose bloom admits a device with no actual rows is
        read once, fully masked, and counted as a false positive."""
        path = tmp_path / "capture.cap"
        records = make_capture(path, mobiles=1, frames_per_mobile=4,
                               block_records=4)
        # Tiny 8-bit bloom: find an absent device that collides with
        # mobile(0)'s bit, so the block is admitted but fully masked.
        with make_capture_writer(tmp_path / "tiny.cap",
                                 format="columnar", block_records=4,
                                 bloom_bits=8, bloom_hashes=1) as writer:
            for record in records:
                writer.write(record)
        reference = BloomFilter(bits=8, hashes=1)
        reference.add(mobile(0).value)
        colliding = next(mobile(i) for i in range(1, 10_000)
                         if mobile(i).value in reference)
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            found = list(ColumnarReader(tmp_path / "tiny.cap",
                                        device=str(colliding)))
        assert found == []
        assert registry.counter("repro.capture.blocks_read").value >= 1
        assert registry.counter(
            "repro.capture.bloom.false_positives").value >= 1

    def test_bssid_and_destination_indexed(self, tmp_path):
        """Bloom indexes src, dst, and bssid — a device only ever seen
        as a probe-response destination is still found."""
        path = tmp_path / "capture.cap"
        target = mobile(77)
        frame = probe_response(AP, target, channel=6, timestamp=1.0,
                               ssid=Ssid("campus"))
        with make_capture_writer(path, format="columnar") as writer:
            writer.write(ReceivedFrame(frame, -60.0, 18.0, 6, 1.0))
        found = list(ColumnarReader(path, device=str(target)))
        assert len(found) == 1
        found_ap = list(ColumnarReader(path, device=str(AP)))
        assert len(found_ap) == 1

    def test_time_window_skips_blocks(self, tmp_path):
        path = tmp_path / "capture.cap"
        make_capture(path, mobiles=10, frames_per_mobile=8,
                     block_records=16)  # rx_ts 0..79, 5 blocks
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            reader = ColumnarReader(path)
            hits = [frame for batch in
                    reader.iter_batches(start_ts=70.0) for frame in batch]
        assert all(r.rx_timestamp >= 70.0 for r in hits)
        assert len(hits) == 10
        assert registry.counter(
            "repro.capture.blocks_skipped").value == 4
