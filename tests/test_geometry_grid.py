"""Spatial-grid tests: exact equivalence with the brute-force scan.

The grid is a pure pruning structure — callers (the radius LP's pair
generation, AP-Loc's disc placement) rely on it returning *exactly*
the pairs a dense upper-triangle scan would, in the same order, so the
constraint systems and vertex sets built on top are bit-identical.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.grid import SpatialGrid


def brute_force_pairs(coords, radius, strict):
    """The dense reference: upper-triangle scan in (i, j) order."""
    i_out, j_out, d_out = [], [], []
    n = len(coords)
    for i in range(n):
        for j in range(i + 1, n):
            dist = float(np.hypot(*(coords[i] - coords[j])))
            if (dist < radius) if strict else (dist <= radius):
                i_out.append(i)
                j_out.append(j)
                d_out.append(dist)
    return (np.array(i_out, dtype=np.int64),
            np.array(j_out, dtype=np.int64),
            np.array(d_out, dtype=np.float64))


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SpatialGrid(np.zeros((3, 3)), cell_size=1.0)
        with pytest.raises(ValueError):
            SpatialGrid(np.zeros((2, 2)), cell_size=0.0)

    def test_empty_grid(self):
        grid = SpatialGrid(np.empty((0, 2)), cell_size=5.0)
        assert len(grid) == 0
        assert grid.occupied_cells == 0
        i, j, dist = grid.pairs_within(10.0)
        assert i.size == j.size == dist.size == 0
        assert grid.query_radius(0.0, 0.0, 10.0).size == 0

    def test_single_point(self):
        grid = SpatialGrid(np.array([[1.0, 2.0]]), cell_size=5.0)
        i, j, _ = grid.pairs_within(10.0)
        assert i.size == 0
        np.testing.assert_array_equal(grid.query_radius(1.0, 2.0, 0.5),
                                      [0])


class TestPairsWithin:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_matches_brute_force(self, data):
        n = data.draw(st.integers(min_value=0, max_value=40))
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        radius = data.draw(st.floats(min_value=0.5, max_value=80.0,
                                     allow_nan=False))
        cell = data.draw(st.floats(min_value=0.5, max_value=120.0,
                                   allow_nan=False))
        strict = data.draw(st.booleans())
        rng = np.random.default_rng(seed)
        coords = rng.uniform(-100.0, 100.0, size=(n, 2))

        grid = SpatialGrid(coords, cell_size=cell)
        got = grid.pairs_within(radius, strict=strict)
        want = brute_force_pairs(coords, radius, strict)
        np.testing.assert_array_equal(got[0], want[0])
        np.testing.assert_array_equal(got[1], want[1])
        np.testing.assert_allclose(got[2], want[2])

    def test_boundary_semantics(self):
        # Two points exactly `radius` apart: inclusive keeps the pair,
        # strict drops it — mirroring the LP's "no constraint can bind
        # at exactly 2 r_max" cutoff versus disc tangency.
        coords = np.array([[0.0, 0.0], [10.0, 0.0]])
        grid = SpatialGrid(coords, cell_size=10.0)
        i, _, _ = grid.pairs_within(10.0, strict=True)
        assert i.size == 0
        i, j, dist = grid.pairs_within(10.0, strict=False)
        np.testing.assert_array_equal(i, [0])
        np.testing.assert_array_equal(j, [1])
        assert dist[0] == pytest.approx(10.0)

    def test_ordering_is_lexicographic(self):
        rng = np.random.default_rng(7)
        coords = rng.uniform(0.0, 50.0, size=(30, 2))
        grid = SpatialGrid(coords, cell_size=8.0)
        i, j, _ = grid.pairs_within(25.0)
        assert np.all(i < j)
        pairs = list(zip(i.tolist(), j.tolist()))
        assert pairs == sorted(pairs)

    def test_cell_size_does_not_change_result(self):
        # The stencil reach adapts to radius / cell_size, so any cell
        # size returns the same pair set.
        rng = np.random.default_rng(11)
        coords = rng.uniform(-30.0, 30.0, size=(25, 2))
        reference = None
        for cell in (1.5, 6.0, 20.0, 100.0):
            got = SpatialGrid(coords, cell_size=cell).pairs_within(12.0)
            if reference is None:
                reference = got
            else:
                np.testing.assert_array_equal(got[0], reference[0])
                np.testing.assert_array_equal(got[1], reference[1])

    def test_negative_coordinates(self):
        # floor() keying must not fold negative cells onto positive
        # ones (a truncation bug would).
        coords = np.array([[-0.5, -0.5], [0.5, 0.5], [-0.5, 0.5]])
        grid = SpatialGrid(coords, cell_size=1.0)
        i, j, _ = grid.pairs_within(2.0)
        assert list(zip(i.tolist(), j.tolist())) == [(0, 1), (0, 2),
                                                     (1, 2)]

    def test_duplicate_points(self):
        coords = np.array([[5.0, 5.0], [5.0, 5.0], [5.0, 5.0]])
        grid = SpatialGrid(coords, cell_size=2.0)
        i, j, dist = grid.pairs_within(1.0)
        assert list(zip(i.tolist(), j.tolist())) == [(0, 1), (0, 2),
                                                     (1, 2)]
        np.testing.assert_allclose(dist, 0.0)

    def test_radius_validation(self):
        grid = SpatialGrid(np.zeros((1, 2)), cell_size=1.0)
        with pytest.raises(ValueError):
            grid.pairs_within(-1.0)
        with pytest.raises(ValueError):
            grid.query_radius(0.0, 0.0, -1.0)


class TestQueryRadius:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_matches_brute_force(self, data):
        n = data.draw(st.integers(min_value=0, max_value=40))
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        radius = data.draw(st.floats(min_value=0.0, max_value=60.0,
                                     allow_nan=False))
        strict = data.draw(st.booleans())
        rng = np.random.default_rng(seed)
        coords = rng.uniform(-50.0, 50.0, size=(n, 2))
        probe = rng.uniform(-60.0, 60.0, size=2)

        grid = SpatialGrid(coords, cell_size=10.0)
        got = grid.query_radius(probe[0], probe[1], radius, strict=strict)
        dist = np.hypot(*(coords - probe).T) if n else np.empty(0)
        keep = dist < radius if strict else dist <= radius
        np.testing.assert_array_equal(got, np.nonzero(keep)[0])

    def test_far_probe_returns_empty(self):
        grid = SpatialGrid(np.zeros((4, 2)), cell_size=1.0)
        assert grid.query_radius(1e6, 1e6, 5.0).size == 0
