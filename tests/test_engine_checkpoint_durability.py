"""Durable checkpoints: atomicity, CRC integrity, rotation, fallback."""

import json

import pytest

from repro.engine import StreamingEngine, checkpoint_crc, load_checkpoint_data
from repro.faults import (
    CheckpointError,
    FaultInjector,
    FaultSpec,
    use_injector,
)
from repro.localization import MLoc

from tests.test_engine_checkpoint import build_stream, final_tracks


def run_partial(square_db, frames):
    engine = StreamingEngine(MLoc(square_db), window_s=30.0, batch_size=3)
    engine.ingest_stream(frames)
    return engine


class TestAtomicSave:
    def test_save_leaves_no_temp_file(self, square_db, tmp_path):
        engine = run_partial(square_db,
                             build_stream(square_db, devices=2, rounds=1))
        path = tmp_path / "engine.ckpt"
        engine.save_checkpoint(path)
        assert path.exists()
        assert list(tmp_path.iterdir()) == [path]

    def test_payload_carries_valid_crc(self, square_db, tmp_path):
        engine = run_partial(square_db,
                             build_stream(square_db, devices=2, rounds=1))
        path = tmp_path / "engine.ckpt"
        engine.save_checkpoint(path)
        data = json.loads(path.read_text())
        assert data["engine_checkpoint"] == 3
        assert data["crc32"] == checkpoint_crc(data)

    def test_crash_mid_checkpoint_preserves_previous(self, square_db,
                                                     tmp_path):
        frames = build_stream(square_db)
        engine = run_partial(square_db, frames[:30])
        path = tmp_path / "engine.ckpt"
        engine.save_checkpoint(path)
        before = path.read_bytes()
        engine.ingest_stream(frames[30:60])
        injector = FaultInjector(
            [FaultSpec("engine.checkpoint", mode="raise",
                       error="CheckpointError")])
        with use_injector(injector):
            with pytest.raises(CheckpointError):
                engine.save_checkpoint(path)
        # The fault hit between temp-write and rename: the previous
        # generation is untouched and still restores.
        assert path.read_bytes() == before
        StreamingEngine.load_checkpoint(path, MLoc(square_db))

    def test_save_rejects_bad_keep(self, square_db, tmp_path):
        engine = StreamingEngine(MLoc(square_db))
        with pytest.raises(ValueError):
            engine.save_checkpoint(tmp_path / "x.ckpt", keep=0)


class TestIntegrity:
    def test_tampered_checkpoint_raises(self, square_db, tmp_path):
        engine = run_partial(square_db,
                             build_stream(square_db, devices=2, rounds=1))
        path = tmp_path / "engine.ckpt"
        engine.save_checkpoint(path)
        data = json.loads(path.read_text())
        data["counters"]["frames_ingested"] += 1  # bit-rot stand-in
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError, match="CRC mismatch"):
            load_checkpoint_data(path)
        # CheckpointError subclasses ValueError: legacy handlers hold.
        with pytest.raises(ValueError):
            StreamingEngine.restore(data, MLoc(square_db))

    def test_truncated_checkpoint_raises(self, square_db, tmp_path):
        path = tmp_path / "engine.ckpt"
        path.write_text('{"engine_checkpoint": 3, "conf')
        with pytest.raises(CheckpointError, match="no valid checkpoint"):
            load_checkpoint_data(path)

    def test_missing_checkpoint_names_tried_files(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            load_checkpoint_data(tmp_path / "absent.ckpt")

    def test_v2_checkpoint_without_crc_still_restores(self, square_db,
                                                      tmp_path):
        engine = run_partial(square_db,
                             build_stream(square_db, devices=2, rounds=1))
        data = engine.checkpoint()
        data["engine_checkpoint"] = 2
        del data["quarantine"]
        del data["failure_counts"]
        path = tmp_path / "v2.ckpt"
        path.write_text(json.dumps(data))
        restored = StreamingEngine.load_checkpoint(path, MLoc(square_db))
        assert restored.stats().frames_ingested == (
            engine.stats().frames_ingested)


class TestRotation:
    def test_generations_rotate_up_to_keep(self, square_db, tmp_path):
        engine = StreamingEngine(MLoc(square_db))
        path = tmp_path / "engine.ckpt"
        for _ in range(4):
            engine.save_checkpoint(path, keep=3)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["engine.ckpt", "engine.ckpt.1", "engine.ckpt.2"]

    def test_keep_one_overwrites_in_place(self, square_db, tmp_path):
        engine = StreamingEngine(MLoc(square_db))
        path = tmp_path / "engine.ckpt"
        engine.save_checkpoint(path, keep=1)
        engine.save_checkpoint(path, keep=1)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["engine.ckpt"]

    def test_corrupt_newest_falls_back_to_rotation(self, square_db,
                                                   tmp_path):
        frames = build_stream(square_db)
        cut = 37
        path = tmp_path / "engine.ckpt"

        uninterrupted = StreamingEngine(MLoc(square_db), window_s=30.0,
                                        batch_size=3)
        uninterrupted.run(iter(frames))

        engine = run_partial(square_db, frames[:cut])
        engine.save_checkpoint(path, keep=2)
        engine.save_checkpoint(path, keep=2)
        # The newest generation is torn mid-write (killed process).
        path.write_text(path.read_text()[: path.stat().st_size // 2])

        resumed = StreamingEngine.load_checkpoint(path, MLoc(square_db))
        resumed.ingest_stream(frames[cut:])
        resumed.flush()
        # Resumed-from-rotation still equals the uninterrupted run,
        # tracks and cumulative metrics alike.
        assert final_tracks(resumed) == final_tracks(uninterrupted)
        assert resumed.stats().frames_ingested == (
            uninterrupted.stats().frames_ingested)

    def test_fallback_disabled_fails_fast(self, square_db, tmp_path):
        engine = run_partial(square_db,
                             build_stream(square_db, devices=2, rounds=1))
        path = tmp_path / "engine.ckpt"
        engine.save_checkpoint(path, keep=2)
        engine.save_checkpoint(path, keep=2)
        path.write_text("garbage")
        load_checkpoint_data(path)  # fallback finds .1
        with pytest.raises(CheckpointError):
            load_checkpoint_data(path, fallback=False)
