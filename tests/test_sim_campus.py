"""Campus-generator tests."""

import numpy as np
import pytest

from repro.sim.campus import (
    CampusConfig,
    channel_histogram,
    generate_campus,
    non_overlapping_share,
)


@pytest.fixture
def campus(rng):
    config = CampusConfig(ap_count=300)
    return generate_campus(config, rng)


class TestGeneration:
    def test_counts(self, campus):
        access_points, truth_db = campus
        assert len(access_points) == 300
        assert len(truth_db) == 300

    def test_positions_in_area(self, campus):
        access_points, _ = campus
        for ap in access_points:
            assert 0.0 <= ap.position.x <= 1000.0
            assert 0.0 <= ap.position.y <= 1000.0

    def test_ranges_in_bounds(self, campus):
        access_points, _ = campus
        for ap in access_points:
            assert 40.0 <= ap.max_range_m <= 120.0

    def test_unique_bssids(self, campus):
        access_points, _ = campus
        assert len({ap.bssid for ap in access_points}) == 300

    def test_truth_db_mirrors_aps(self, campus):
        access_points, truth_db = campus
        for ap in access_points:
            record = truth_db.get(ap.bssid)
            assert record is not None
            assert record.location == ap.position
            assert record.max_range_m == ap.max_range_m
            assert record.channel == ap.channel

    def test_deterministic(self):
        config = CampusConfig(ap_count=50)
        aps_a, _ = generate_campus(config, np.random.default_rng(5))
        aps_b, _ = generate_campus(config, np.random.default_rng(5))
        assert [a.bssid for a in aps_a] == [b.bssid for b in aps_b]
        assert [a.position for a in aps_a] == [b.position for b in aps_b]


class TestChannelDistribution:
    def test_fig8_mass_on_1_6_11(self, campus):
        # "most APs (93.7%) use Channels 1, 6 and 11."
        access_points, _ = campus
        share = non_overlapping_share(access_points)
        assert 0.88 <= share <= 0.99

    def test_histogram_sums_to_count(self, campus):
        access_points, _ = campus
        histogram = channel_histogram(access_points)
        assert sum(histogram.values()) == 300

    def test_channel_6_dominates(self, campus):
        access_points, _ = campus
        histogram = channel_histogram(access_points)
        assert histogram[6] == max(histogram.values())

    def test_empty_share(self):
        assert non_overlapping_share([]) == 0.0


class TestConfigValidation:
    def test_bad_count(self):
        with pytest.raises(ValueError):
            CampusConfig(ap_count=0)

    def test_bad_cluster_fraction(self):
        with pytest.raises(ValueError):
            CampusConfig(cluster_fraction=1.5)

    def test_bad_ranges(self):
        with pytest.raises(ValueError):
            CampusConfig(range_min_m=100.0, range_max_m=50.0)

    def test_bad_weights(self):
        with pytest.raises(ValueError):
            CampusConfig(channel_weights={1: 0.5, 6: 0.4})  # sums to 0.9


class TestClustering:
    def test_clustered_layout_is_denser_locally(self):
        """With heavy clustering, nearest-neighbor distances shrink."""
        def mean_nearest_neighbor(cluster_fraction, seed=3):
            config = CampusConfig(ap_count=150,
                                  cluster_fraction=cluster_fraction,
                                  cluster_sigma_m=20.0)
            aps, _ = generate_campus(config, np.random.default_rng(seed))
            total = 0.0
            for ap in aps:
                nearest = min(ap.position.distance_to(other.position)
                              for other in aps if other is not ap)
                total += nearest
            return total / len(aps)

        assert mean_nearest_neighbor(0.9) < mean_nearest_neighbor(0.0)
