"""Theorem 2 tests: closed-form vs Monte Carlo, Corollary 1 monotonicity."""

import math

import numpy as np
import pytest

from repro.theory.theorem2 import (
    expected_area_at_density,
    expected_intersected_area,
    monte_carlo_intersected_area,
    single_ap_probability,
)


class TestSingleApProbability:
    def test_at_zero_distance(self):
        # A point at the mobile: the lens is the full disc, p = 1...
        # p(0) = (2/π)(π/2 - 0) = 1.
        assert single_ap_probability(0.0) == pytest.approx(1.0)

    def test_at_max_distance(self):
        assert single_ap_probability(1.0) == pytest.approx(0.0, abs=1e-12)

    def test_monotone_decreasing(self):
        ys = np.linspace(0.0, 1.0, 21)
        values = [single_ap_probability(float(y)) for y in ys]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            single_ap_probability(-0.1)
        with pytest.raises(ValueError):
            single_ap_probability(1.1)


class TestExpectedArea:
    def test_k1_is_full_disc(self):
        """One AP: the intersected area is that AP's whole disc, πr²."""
        assert expected_intersected_area(1, 1.0) == pytest.approx(
            math.pi, rel=1e-9)

    def test_k1_scales_with_r_squared(self):
        assert expected_intersected_area(1, 2.0) == pytest.approx(
            4 * math.pi, rel=1e-9)

    def test_fig2_monotone_decreasing_in_k(self):
        values = [expected_intersected_area(k) for k in range(1, 31)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_fig2_roughly_inverse_in_k(self):
        # "the intersected area is roughly inversely proportional with
        # the number of communicable APs" — the exact decay is a bit
        # faster than 1/k (doubling k shrinks CA by ~3.1-3.6x), but the
        # curve is hyperbolic-shaped: bounded doubling ratios.
        for k in (4, 8, 12):
            ratio = expected_intersected_area(k) / \
                expected_intersected_area(2 * k)
            assert 2.0 < ratio < 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_intersected_area(0)
        with pytest.raises(ValueError):
            expected_intersected_area(5, r=0.0)

    @pytest.mark.parametrize("k", [2, 5, 10])
    def test_matches_monte_carlo(self, k):
        closed_form = expected_intersected_area(k, 1.0)
        rng = np.random.default_rng(100 + k)
        mc, stderr = monte_carlo_intersected_area(k, 1.0, rng, trials=400)
        assert abs(closed_form - mc) < max(4.0 * stderr,
                                           0.05 * closed_form)

    def test_monte_carlo_scales_with_r(self):
        rng = np.random.default_rng(0)
        small, _ = monte_carlo_intersected_area(5, 1.0, rng, trials=150)
        rng = np.random.default_rng(0)
        large, _ = monte_carlo_intersected_area(5, 3.0, rng, trials=150)
        assert large == pytest.approx(9.0 * small, rel=1e-6)

    def test_monte_carlo_validation(self):
        with pytest.raises(ValueError):
            monte_carlo_intersected_area(5, 1.0, np.random.default_rng(0),
                                         trials=0)


class TestCorollary1:
    def test_decreasing_in_density(self):
        values = [expected_area_at_density(rho, 1.0)
                  for rho in (1.0, 2.0, 4.0, 8.0)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_decreasing_in_r_at_fixed_density(self):
        # Fig 3: larger transmission radius -> smaller intersected area
        # (more APs become communicable, each constraint tighter).
        density = 2.0
        values = [expected_area_at_density(density, r)
                  for r in (0.8, 1.0, 1.5, 2.0, 3.0)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_area_at_density(0.0, 1.0)
        with pytest.raises(ValueError):
            expected_area_at_density(1.0, 0.0)
