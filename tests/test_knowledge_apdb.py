"""AP-database tests."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.knowledge.apdb import ApDatabase, ApRecord
from repro.net80211.mac import MacAddress
from repro.net80211.ssid import Ssid

from tests.helpers import make_record


class TestApRecord:
    def test_coverage_disc_with_range(self):
        record = make_record(0, 10.0, 20.0, max_range_m=50.0)
        disc = record.coverage_disc()
        assert disc.center == Point(10.0, 20.0)
        assert disc.radius == 50.0

    def test_coverage_disc_fallback(self):
        record = make_record(0, 10.0, 20.0)  # no range
        assert record.coverage_disc(fallback_range_m=99.0).radius == 99.0

    def test_coverage_disc_no_range_no_fallback(self):
        record = make_record(0, 10.0, 20.0)
        with pytest.raises(ValueError):
            record.coverage_disc()


class TestApDatabase:
    def test_add_get_contains(self, square_db):
        record = make_record(0, 0.0, 0.0, 80.0)
        assert record.bssid in square_db
        assert square_db.get(record.bssid).location == Point(0.0, 0.0)
        assert square_db.get(MacAddress(0xFFFF)) is None
        assert len(square_db) == 4

    def test_add_replaces(self):
        db = ApDatabase([make_record(0, 0.0, 0.0, 50.0)])
        db.add(make_record(0, 5.0, 5.0, 60.0))
        assert len(db) == 1
        assert db.get(make_record(0, 0, 0).bssid).max_range_m == 60.0

    def test_records_for_skips_unknown(self, square_db):
        known = make_record(0, 0, 0).bssid
        unknown = MacAddress(0xDEAD)
        records = square_db.records_for({known, unknown})
        assert [r.bssid for r in records] == [known]

    def test_records_for_strict_raises(self, square_db):
        with pytest.raises(KeyError):
            square_db.records_for({MacAddress(0xDEAD)},
                                  skip_unknown=False)

    def test_records_for_stable_order(self, square_db):
        bssids = square_db.bssids
        records = square_db.records_for(set(bssids))
        assert [r.bssid for r in records] == sorted(bssids)

    def test_subset(self, square_db):
        keep = {make_record(0, 0, 0).bssid, make_record(2, 0, 0).bssid}
        subset = square_db.subset(keep)
        assert len(subset) == 2
        assert set(subset.bssids) == keep

    def test_without_ranges(self, square_db):
        stripped = square_db.without_ranges()
        assert all(r.max_range_m is None for r in stripped)
        # Original untouched.
        assert all(r.max_range_m == 80.0 for r in square_db)

    def test_with_position_noise(self, square_db):
        rng = np.random.default_rng(0)
        noisy = square_db.with_position_noise(rng, sigma_m=5.0)
        moved = [noisy.get(r.bssid).location.distance_to(r.location)
                 for r in square_db]
        assert all(d > 0.0 for d in moved)
        assert max(moved) < 30.0  # ~6 sigma

    def test_with_zero_noise_preserves(self, square_db):
        rng = np.random.default_rng(0)
        same = square_db.with_position_noise(rng, sigma_m=0.0)
        for record in square_db:
            assert same.get(record.bssid).location == record.location

    def test_noise_validation(self, square_db):
        with pytest.raises(ValueError):
            square_db.with_position_noise(np.random.default_rng(0), -1.0)

    def test_observable_from_center(self, square_db):
        gamma = square_db.observable_from(Point(50.0, 50.0))
        assert gamma == set(square_db.bssids)  # center sees all four

    def test_observable_from_corner(self, square_db):
        # At (0, 0): its own AP at distance 0, the two adjacent corners
        # at 100 m (> 80 m range), the far corner at 141 m.
        gamma = square_db.observable_from(Point(0.0, 0.0))
        assert gamma == {make_record(0, 0, 0).bssid}

    def test_observable_requires_ranges(self, square_db):
        with pytest.raises(ValueError):
            square_db.without_ranges().observable_from(Point(0, 0))
