"""WorkerSupervisor: timeouts, re-dispatch, order, bounded budgets."""

from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError

import pytest

from repro.faults import WorkerError, WorkerSupervisor


class FakeFuture:
    """A scripted future: value, or an exception instance to raise."""

    def __init__(self, outcome):
        self.outcome = outcome
        self.cancelled = False

    def result(self, timeout=None):
        if isinstance(self.outcome, BaseException):
            raise self.outcome
        return self.outcome

    def cancel(self):
        self.cancelled = True


class ScriptedPool:
    """Returns scripted outcomes per (task, dispatch-count) pair."""

    def __init__(self, script):
        # script: task -> list of outcomes, one per successive dispatch.
        self.script = {task: list(outcomes)
                       for task, outcomes in script.items()}
        self.submissions = []

    def submit(self, task):
        self.submissions.append(task)
        outcomes = self.script[task]
        outcome = outcomes.pop(0) if len(outcomes) > 1 else outcomes[0]
        return FakeFuture(outcome)


class TestSupervisor:
    def test_happy_path_returns_results_in_task_order(self):
        pool = ScriptedPool({"a": ["A"], "b": ["B"], "c": ["C"]})
        supervisor = WorkerSupervisor()
        assert supervisor.run(pool.submit, ["a", "b", "c"]) == \
            ["A", "B", "C"]

    def test_timeout_triggers_on_failure_and_redispatch(self):
        pool = ScriptedPool({
            "a": ["A"],
            "b": [FutureTimeoutError(), "B"],
            "c": ["C"],
        })
        failures = []
        supervisor = WorkerSupervisor(
            timeout_s=0.5,
            on_failure=lambda index, error: failures.append(
                (index, type(error).__name__)))
        assert supervisor.run(pool.submit, ["a", "b", "c"]) == \
            ["A", "B", "C"]
        assert failures == [(1, "TimeoutError")]
        # a was collected before the failure; b and c were re-submitted.
        assert pool.submissions == ["a", "b", "c", "b", "c"]

    def test_uncollected_futures_cancelled_on_redispatch(self):
        timeout_then_ok = [FutureTimeoutError(), "B"]
        pool = ScriptedPool({"b": timeout_then_ok, "c": ["C"]})
        first_c_futures = []
        original_submit = pool.submit

        def submit(task):
            future = original_submit(task)
            if task == "c" and not first_c_futures:
                first_c_futures.append(future)
            return future

        supervisor = WorkerSupervisor(timeout_s=0.5)
        assert supervisor.run(submit, ["b", "c"]) == ["B", "C"]
        assert first_c_futures[0].cancelled

    def test_worker_error_after_max_dispatches(self):
        pool = ScriptedPool({"b": [BrokenExecutor("pool died")]})
        supervisor = WorkerSupervisor(max_dispatches=3)
        with pytest.raises(WorkerError, match="chunk 0 failed after 3"):
            supervisor.run(pool.submit, ["b"])
        assert pool.submissions == ["b", "b", "b"]

    def test_only_failing_chunk_consumes_budget(self):
        pool = ScriptedPool({
            "a": [FutureTimeoutError(), FutureTimeoutError(), "A"],
            "b": ["B"],
        })
        supervisor = WorkerSupervisor(timeout_s=0.5, max_dispatches=3)
        assert supervisor.run(pool.submit, ["a", "b"]) == ["A", "B"]
        # b was re-submitted alongside a's retries but never charged.
        assert pool.submissions.count("a") == 3

    def test_submit_raising_counts_as_dispatch_failure(self):
        calls = []

        def submit(task):
            calls.append(task)
            if len(calls) == 1:
                raise BrokenExecutor("dead on arrival")
            return FakeFuture("ok")

        supervisor = WorkerSupervisor()
        assert supervisor.run(submit, ["a"]) == ["ok"]
        assert len(calls) == 2

    def test_non_failure_exception_propagates(self):
        pool = ScriptedPool({"a": [KeyError("bug in chunk")]})
        supervisor = WorkerSupervisor()
        with pytest.raises(KeyError):
            supervisor.run(pool.submit, ["a"])

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            WorkerSupervisor(timeout_s=0.0)
        with pytest.raises(ValueError):
            WorkerSupervisor(max_dispatches=0)
