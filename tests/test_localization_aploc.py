"""AP-Loc algorithm tests."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.knowledge.wardrive import TrainingTuple, Wardriver
from repro.localization.aploc import APLoc
from repro.net80211.mac import MacAddress
from repro.sim.mobility import grid_route

from tests.helpers import make_record


def square_training(square_db, rows=4, per_row=4, margin=60.0):
    """A training sweep that *surrounds* the APs.

    Disc-intersection placement is biased when all observing training
    points lie to one side of an AP (the intersection centroid is
    dragged toward them), so the route extends ``margin`` beyond the AP
    bounding box — the paper's drives "around the neighborhood" do the
    same implicitly.
    """
    route = grid_route(-margin, -margin, 100.0 + margin, 100.0 + margin,
                       rows, per_row)
    return Wardriver(square_db.observable_from).collect(route)


class TestApPlacement:
    def test_places_all_trained_aps(self, square_db):
        training = square_training(square_db)
        aploc = APLoc(training, training_radius_m=100.0, r_max=100.0)
        locations = aploc.estimate_ap_locations()
        assert set(locations) == set(square_db.bssids)

    def test_placement_accuracy(self, square_db):
        training = square_training(square_db, rows=8, per_row=8)
        aploc = APLoc(training, training_radius_m=90.0, r_max=100.0)
        locations = aploc.estimate_ap_locations()
        for bssid, estimated in locations.items():
            truth = square_db.get(bssid).location
            assert estimated.distance_to(truth) < 20.0

    def test_more_tuples_improve_placement(self, square_db):
        sparse = square_training(square_db, rows=3, per_row=3)
        dense = square_training(square_db, rows=9, per_row=9)

        def mean_error(training):
            aploc = APLoc(training, training_radius_m=90.0, r_max=100.0)
            locations = aploc.estimate_ap_locations()
            return np.mean([
                square_db.get(b).location.distance_to(loc)
                for b, loc in locations.items()
            ])

        assert mean_error(dense) <= mean_error(sparse) + 1.0

    def test_placement_cached(self, square_db):
        aploc = APLoc(square_training(square_db), training_radius_m=90.0,
                      r_max=100.0)
        first = aploc.estimate_ap_locations()
        second = aploc.estimate_ap_locations()
        assert first == second

    def test_empty_intersection_falls_back_to_mean(self):
        # Two training points 300 m apart both claim to see the AP but
        # the training radius is only 100 m: the discs are disjoint.
        ap = MacAddress(7)
        training = [
            TrainingTuple(Point(0.0, 0.0), frozenset({ap})),
            TrainingTuple(Point(300.0, 0.0), frozenset({ap})),
        ]
        aploc = APLoc(training, training_radius_m=100.0, r_max=100.0)
        locations = aploc.estimate_ap_locations()
        assert locations[ap] == Point(150.0, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            APLoc([], training_radius_m=0.0, r_max=100.0)


class TestEndToEnd:
    def test_locate_before_fit_raises(self, square_db):
        aploc = APLoc(square_training(square_db), training_radius_m=90.0,
                      r_max=100.0)
        with pytest.raises(RuntimeError, match="before fit"):
            aploc.locate(square_db.bssids)

    def test_full_pipeline(self, square_db):
        rng = np.random.default_rng(2)
        training = square_training(square_db, rows=6, per_row=6)
        corpus = []
        for _ in range(200):
            p = Point(*(rng.uniform(0, 100, 2)))
            gamma = square_db.observable_from(p)
            if gamma:
                corpus.append(gamma)
        aploc = APLoc(training, training_radius_m=90.0, r_max=100.0)
        aploc.fit(corpus)
        truth = Point(50.0, 50.0)
        estimate = aploc.locate(square_db.observable_from(truth))
        assert estimate is not None
        assert estimate.algorithm == "ap-loc"
        assert estimate.error_to(truth) < 40.0

    def test_fit_and_locate_all(self, square_db):
        training = square_training(square_db)
        corpus = [set(square_db.bssids)]
        aploc = APLoc(training, training_radius_m=90.0, r_max=100.0)
        estimates = aploc.fit_and_locate_all(corpus)
        assert len(estimates) == 1
        assert estimates[0] is not None

    def test_refinement_runs_and_does_not_hurt(self, square_db):
        """The iterative-refinement extension: alternating placement
        and radius estimation.  Its benefit depends on training density
        (grid discretization dominates when sparse), so the contract is
        mechanism correctness plus no regression."""
        import numpy as np

        rng = np.random.default_rng(3)
        training = square_training(square_db, rows=7, per_row=7)
        corpus = []
        for _ in range(200):
            p = Point(*(rng.uniform(0, 100, 2)))
            gamma = square_db.observable_from(p)
            if gamma:
                corpus.append(gamma)

        def mean_error(refine):
            aploc = APLoc(training, training_radius_m=90.0, r_max=100.0,
                          refine_iterations=refine)
            aploc.fit(corpus)
            locations = aploc.estimate_ap_locations()
            return np.mean([
                square_db.get(b).location.distance_to(loc)
                for b, loc in locations.items()])

        baseline = mean_error(0)
        refined = mean_error(2)
        assert refined <= baseline + 5.0  # never substantially worse

    def test_refinement_keeps_location_on_empty_region(self):
        # An AP whose refined (smaller-radius) discs become disjoint
        # keeps its previous placement rather than exploding.
        ap = MacAddress(3)
        training = [
            TrainingTuple(Point(0.0, 0.0), frozenset({ap})),
            TrainingTuple(Point(150.0, 0.0), frozenset({ap})),
        ]
        aploc = APLoc(training, training_radius_m=100.0, r_max=100.0,
                      r_min=1.0, refine_iterations=1)
        # The corpus gives the LP no reason to keep the radius large.
        aploc.fit([{ap}])
        locations = aploc.estimate_ap_locations()
        assert ap in locations
        # Stays on the segment between the training points.
        assert -1.0 <= locations[ap].y <= 1.0
        assert 0.0 <= locations[ap].x <= 150.0

    def test_refinement_validation(self, square_db):
        with pytest.raises(ValueError):
            APLoc(square_training(square_db), training_radius_m=90.0,
                  r_max=100.0, refine_iterations=-1)

    def test_untrained_ap_invisible(self, square_db):
        # An AP never seen in training cannot be used for localization.
        training = [TrainingTuple(Point(50.0, 50.0),
                                  frozenset({square_db.bssids[0]}))]
        aploc = APLoc(training, training_radius_m=90.0, r_max=100.0)
        aploc.fit([{square_db.bssids[0]}])
        estimate = aploc.locate({square_db.bssids[1]})
        assert estimate is None
