"""Localization-experiment harness tests."""

import pytest

from repro.analysis.experiments import (
    AlgorithmReport,
    TestCase,
    run_localization_experiment,
)
from repro.geometry.point import Point
from repro.localization.centroid import CentroidLocalizer
from repro.localization.mloc import MLoc
from repro.net80211.mac import MacAddress


@pytest.fixture
def cases(square_db):
    points = [Point(50.0, 50.0), Point(60.0, 40.0), Point(30.0, 70.0)]
    return [TestCase.of(square_db.observable_from(p), p) for p in points]


class TestHarness:
    def test_runs_all_localizers(self, square_db, cases):
        reports = run_localization_experiment(
            {"m-loc": MLoc(square_db),
             "centroid": CentroidLocalizer(square_db)},
            cases)
        assert set(reports) == {"m-loc", "centroid"}
        for report in reports.values():
            assert len(report.results) == len(cases)
            assert report.skipped == 0

    def test_skipped_counted(self, square_db):
        unknown_case = TestCase.of({MacAddress(0xDEAD)}, Point(0, 0))
        reports = run_localization_experiment(
            {"m-loc": MLoc(square_db)}, [unknown_case])
        assert reports["m-loc"].skipped == 1
        assert reports["m-loc"].results == []

    def test_mean_error(self, square_db, cases):
        reports = run_localization_experiment(
            {"m-loc": MLoc(square_db)}, cases)
        report = reports["m-loc"]
        assert report.mean_error() == pytest.approx(
            sum(report.errors()) / len(report.errors()))

    def test_mean_error_empty_raises(self):
        report = AlgorithmReport(name="x")
        with pytest.raises(ValueError):
            report.mean_error()

    def test_error_stats(self, square_db, cases):
        reports = run_localization_experiment(
            {"m-loc": MLoc(square_db)}, cases)
        stats = reports["m-loc"].error_stats()
        assert stats.count == len(cases)
        assert stats.mean == pytest.approx(reports["m-loc"].mean_error())
        assert stats.minimum <= stats.median <= stats.maximum

    def test_fraction_within(self, square_db, cases):
        reports = run_localization_experiment(
            {"m-loc": MLoc(square_db)}, cases)
        report = reports["m-loc"]
        assert report.fraction_within(1e6) == 1.0
        assert report.fraction_within(0.0) == 0.0
        mid = report.fraction_within(report.mean_error())
        assert 0.0 <= mid <= 1.0


class TestSlicing:
    def test_min_k_filter(self, square_db, cases):
        reports = run_localization_experiment(
            {"m-loc": MLoc(square_db)}, cases)
        report = reports["m-loc"]
        # Center case has k=4; corner-ish cases fewer.
        all_cases = report.mean_error_vs_min_k(1)
        high_k = report.mean_error_vs_min_k(4)
        assert all_cases is not None
        assert high_k is not None
        assert report.mean_error_vs_min_k(99) is None

    def test_area_and_coverage_slices(self, square_db, cases):
        reports = run_localization_experiment(
            {"m-loc": MLoc(square_db),
             "centroid": CentroidLocalizer(square_db)},
            cases)
        mloc = reports["m-loc"]
        assert mloc.mean_area_vs_min_k(1) > 0.0
        # Exact knowledge: every region covers its truth.
        assert mloc.coverage_probability_vs_min_k(1) == 1.0
        centroid = reports["centroid"]
        assert centroid.mean_area_vs_min_k(1) == 0.0
        assert centroid.coverage_probability_vs_min_k(1) == 0.0

    def test_k_values(self, square_db, cases):
        reports = run_localization_experiment(
            {"m-loc": MLoc(square_db)}, cases)
        ks = reports["m-loc"].k_values()
        assert len(ks) == len(cases)
        assert all(k >= 1 for k in ks)


class TestTestCase:
    def test_of_freezes(self):
        case = TestCase.of({MacAddress(1)}, Point(1, 2))
        assert isinstance(case.observed, frozenset)
