"""WGS-84 ↔ ECEF conversion tests (known points + roundtrip properties)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geo.ecef import EcefCoordinate, ecef_to_geodetic, geodetic_to_ecef
from repro.geo.wgs84 import GeodeticCoordinate, WGS84_A, WGS84_B

lat = st.floats(min_value=-89.9, max_value=89.9,
                allow_nan=False, allow_infinity=False)
lon = st.floats(min_value=-180.0, max_value=180.0,
                allow_nan=False, allow_infinity=False)
alt = st.floats(min_value=-1000.0, max_value=50000.0,
                allow_nan=False, allow_infinity=False)


class TestKnownPoints:
    def test_equator_prime_meridian(self):
        ecef = geodetic_to_ecef(GeodeticCoordinate(0.0, 0.0, 0.0))
        assert ecef.x == pytest.approx(WGS84_A)
        assert ecef.y == pytest.approx(0.0, abs=1e-6)
        assert ecef.z == pytest.approx(0.0, abs=1e-6)

    def test_north_pole(self):
        ecef = geodetic_to_ecef(GeodeticCoordinate(90.0, 0.0, 0.0))
        assert ecef.x == pytest.approx(0.0, abs=1e-6)
        assert ecef.z == pytest.approx(WGS84_B)

    def test_equator_90_east(self):
        ecef = geodetic_to_ecef(GeodeticCoordinate(0.0, 90.0, 0.0))
        assert ecef.x == pytest.approx(0.0, abs=1e-6)
        assert ecef.y == pytest.approx(WGS84_A)

    def test_uml_campus(self):
        # UMass Lowell north campus, the paper's main test site.
        coordinate = GeodeticCoordinate(42.6555, -71.3262, 30.0)
        ecef = geodetic_to_ecef(coordinate)
        # Sanity: the vector length is between polar and equatorial
        # radii (plus altitude).
        norm = math.sqrt(ecef.x**2 + ecef.y**2 + ecef.z**2)
        assert WGS84_B < norm < WGS84_A + 100.0

    def test_altitude_moves_radially(self):
        low = geodetic_to_ecef(GeodeticCoordinate(45.0, 10.0, 0.0))
        high = geodetic_to_ecef(GeodeticCoordinate(45.0, 10.0, 1000.0))
        delta = math.sqrt((high.x - low.x)**2 + (high.y - low.y)**2
                          + (high.z - low.z)**2)
        assert delta == pytest.approx(1000.0, rel=1e-9)


class TestReverse:
    def test_polar_axis(self):
        coordinate = ecef_to_geodetic(EcefCoordinate(0.0, 0.0, WGS84_B + 5.0))
        assert coordinate.latitude_deg == pytest.approx(90.0)
        assert coordinate.altitude_m == pytest.approx(5.0, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            GeodeticCoordinate(91.0, 0.0)
        with pytest.raises(ValueError):
            GeodeticCoordinate(0.0, 181.0)


class TestRoundtrip:
    @given(lat, lon, alt)
    def test_geodetic_ecef_roundtrip(self, latitude, longitude, altitude):
        original = GeodeticCoordinate(latitude, longitude, altitude)
        recovered = ecef_to_geodetic(geodetic_to_ecef(original))
        assert recovered.latitude_deg == pytest.approx(latitude, abs=1e-9)
        # Longitude wraps at ±180: compare circularly.
        delta_lon = abs(recovered.longitude_deg - longitude) % 360.0
        assert min(delta_lon, 360.0 - delta_lon) == pytest.approx(
            0.0, abs=1e-9)
        assert recovered.altitude_m == pytest.approx(altitude, abs=1e-6)
