"""Incremental AP-Rad re-fit tests.

The contract under test: ``ingest`` + ``refit`` (warm-started on the
persistent LP) must land on the *same radii* as a cold ``fit`` over the
concatenated corpus.  A small ``tie_break`` makes the LP's optimum
unique so "same" is well-defined even among alternate optima.
"""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.localization.aprad import APRad
from repro.localization.radius_lp import RadiusEstimator
from repro.knowledge.apdb import ApDatabase

from tests.helpers import make_record

TIE = 1e-7


def mac(i):
    from repro.net80211.mac import MacAddress
    return MacAddress(i + 1)


def grid_locations(side, spacing=60.0):
    """A jittered grid of AP locations.

    The jitter matters: an exactly symmetric layout can carry pairs of
    alternate optima whose tie-break perturbations cancel exactly
    (the eps deltas form an arithmetic progression), leaving the
    optimum non-unique.  Generic positions rule that out.
    """
    rng = np.random.default_rng(side)
    return {mac(r * side + c): Point(c * spacing + rng.uniform(-7.0, 7.0),
                                     r * spacing + rng.uniform(-7.0, 7.0))
            for r in range(side) for c in range(side)}


def disc_corpus(locations, true_radius, count, seed):
    """Observation sets from uniform probes with exact disc coverage."""
    rng = np.random.default_rng(seed)
    xs = [p.x for p in locations.values()]
    ys = [p.y for p in locations.values()]
    span_x = (min(xs) - 30.0, max(xs) + 30.0)
    span_y = (min(ys) - 30.0, max(ys) + 30.0)
    corpus = []
    for _ in range(count):
        probe = Point(float(rng.uniform(*span_x)),
                      float(rng.uniform(*span_y)))
        gamma = {m for m, loc in locations.items()
                 if loc.distance_to(probe) <= true_radius}
        if gamma:
            corpus.append(gamma)
    return corpus


def make_estimator(locations, **kwargs):
    kwargs.setdefault("r_max", 100.0)
    kwargs.setdefault("solver", "revised")
    kwargs.setdefault("tie_break", TIE)
    return RadiusEstimator(locations, **kwargs)


class TestIncrementalEquivalence:
    def test_refit_matches_cold_fit(self):
        locations = grid_locations(4)
        corpus = disc_corpus(locations, 45.0, 120, seed=3)
        initial, delta = corpus[:80], corpus[80:]

        incremental = make_estimator(locations)
        incremental.fit(initial)
        incremental.ingest(delta)
        warm = incremental.refit()

        cold = make_estimator(locations).fit(corpus)
        for m in locations:
            assert warm.radii[m] == pytest.approx(cold.radii[m], abs=1e-6)
        assert warm.warm_started
        assert not cold.warm_started

    def test_refit_matches_dense_solver(self):
        locations = grid_locations(3)
        corpus = disc_corpus(locations, 50.0, 90, seed=5)
        incremental = make_estimator(locations)
        incremental.fit(corpus[:60])
        incremental.ingest(corpus[60:])
        warm = incremental.refit()

        dense = make_estimator(locations, solver="simplex").fit(corpus)
        for m in locations:
            assert warm.radii[m] == pytest.approx(dense.radii[m],
                                                  abs=1e-6)

    def test_many_small_deltas(self):
        # Radii must stay consistent through a long refit chain, not
        # just one step — drift in the persistent basis would show up.
        locations = grid_locations(3)
        corpus = disc_corpus(locations, 40.0, 100, seed=9)
        incremental = make_estimator(locations)
        incremental.fit(corpus[:40])
        step = 10
        for start in range(40, len(corpus), step):
            incremental.ingest(corpus[start:start + step])
            warm = incremental.refit()
        cold = make_estimator(locations).fit(corpus)
        for m in locations:
            assert warm.radii[m] == pytest.approx(cold.radii[m], abs=1e-6)

    def test_separated_to_co_observed_transition(self):
        # The delicate delta: a pair constrained apart by early
        # evidence later shows up together.  The "<=" row must stop
        # binding (it is inerted, not deleted) and the new ">=" row
        # must appear.
        a, b = mac(0), mac(1)
        locations = {a: Point(0.0, 0.0), b: Point(100.0, 0.0)}
        incremental = make_estimator(locations)
        before = incremental.fit([{a}, {b}])  # separated: r_a+r_b <= 100
        assert before.separated_pairs == 1
        assert before.radii[a] + before.radii[b] <= 100.0 + 1e-6

        incremental.ingest([{a, b}])  # now co-observed
        after = incremental.refit()
        assert after.co_observed_pairs == 1
        assert after.separated_pairs == 0
        assert after.radii[a] + after.radii[b] >= 100.0 - 1e-6
        assert incremental.inert_rows == 1

        cold = make_estimator(locations).fit([{a}, {b}, {a, b}])
        for m in locations:
            assert after.radii[m] == pytest.approx(cold.radii[m],
                                                   abs=1e-6)

    def test_refit_without_new_evidence_is_stable(self):
        locations = grid_locations(3)
        corpus = disc_corpus(locations, 45.0, 60, seed=13)
        estimator = make_estimator(locations)
        first = estimator.fit(corpus)
        second = estimator.refit()
        for m in locations:
            assert second.radii[m] == pytest.approx(first.radii[m],
                                                    abs=1e-9)


class TestMetadata:
    def test_estimate_reports_solver_work(self):
        locations = grid_locations(3)
        corpus = disc_corpus(locations, 45.0, 60, seed=21)
        estimator = make_estimator(locations)
        estimate = estimator.fit(corpus)
        assert estimate.solver_iterations > 0
        assert estimate.solve_seconds > 0.0
        assert estimate.lp_rows == estimator.lp_rows
        assert estimate.lp_rows > 0

    def test_ingest_returns_observation_count(self):
        locations = grid_locations(2)
        estimator = make_estimator(locations)
        estimator.fit(disc_corpus(locations, 45.0, 20, seed=2))
        added = estimator.ingest([{mac(0)}, {mac(1)}, set()])
        assert added == 2  # empty observation sets carry no evidence

    def test_tie_break_validation(self):
        with pytest.raises(ValueError):
            make_estimator({mac(0): Point(0, 0)}, tie_break=-1.0)


class TestAPRadPartialFit:
    def test_partial_fit_before_fit_delegates(self):
        locations = grid_locations(3)
        db = ApDatabase(make_record(i, p.x, p.y)
                        for i, (m, p) in enumerate(sorted(locations.items())))
        aprad = APRad(db, r_max=100.0, solver="revised", tie_break=TIE)
        assert not aprad.is_fitted
        corpus = disc_corpus({r.bssid: r.location for r in db},
                             45.0, 40, seed=31)
        estimate = aprad.partial_fit(corpus)
        assert aprad.is_fitted
        assert aprad.last_fit is estimate

    def test_partial_fit_matches_cold_fit(self):
        jitter = np.random.default_rng(8)
        db = ApDatabase(
            make_record(i, x * 60.0 + jitter.uniform(-7.0, 7.0),
                        y * 60.0 + jitter.uniform(-7.0, 7.0))
            for i, (x, y) in enumerate(
                (r, c) for r in range(3) for c in range(3)))
        locations = {r.bssid: r.location for r in db}
        corpus = disc_corpus(locations, 45.0, 90, seed=37)

        streaming = APRad(db, r_max=100.0, solver="revised", tie_break=TIE)
        streaming.fit(corpus[:60])
        generation = streaming.cache_key()
        warm = streaming.partial_fit(corpus[60:])
        assert streaming.cache_key() != generation  # cache invalidated

        cold = APRad(db, r_max=100.0, solver="revised", tie_break=TIE)
        cold_fit = cold.fit(corpus)
        for bssid in locations:
            assert warm.radii[bssid] == pytest.approx(
                cold_fit.radii[bssid], abs=1e-6)
        # The fitted database the localizer uses carries the new radii.
        for record in streaming.fitted_database:
            assert record.max_range_m == pytest.approx(
                warm.radii[record.bssid], abs=1e-9)
