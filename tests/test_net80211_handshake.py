"""Auth/association handshake tests."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.net80211.frames import (
    FrameType,
    association_request,
    association_response,
    authentication,
)
from repro.net80211.mac import MacAddress
from repro.net80211.medium import Medium
from repro.net80211.station import PROFILES, MobileStation
from repro.radio.propagation import FreeSpaceModel
from repro.sim.world import CampusWorld
from repro.sniffer.receiver import build_marauder_sniffer

from tests.test_sim_world import make_ap

STA = MacAddress.parse("00:1b:63:11:22:33")


class TestHandshakeFrames:
    def test_authentication_frame(self):
        ap = make_ap(0, 0.0, 0.0)
        frame = authentication(STA, ap.bssid, 6, 1.0)
        assert frame.frame_type is FrameType.AUTHENTICATION
        assert frame.bssid == ap.bssid

    def test_association_request_carries_ssid(self):
        ap = make_ap(0, 0.0, 0.0)
        frame = association_request(STA, ap.bssid, 6, 1.0, ap.ssid)
        assert frame.frame_type is FrameType.ASSOCIATION_REQUEST
        assert frame.ssid == ap.ssid

    def test_ap_grants_association(self):
        ap = make_ap(0, 0.0, 0.0)
        request = association_request(STA, ap.bssid, ap.channel, 1.0,
                                      ap.ssid)
        response = ap.handle_association(request, 1.01)
        assert response is not None
        assert response.frame_type is FrameType.ASSOCIATION_RESPONSE
        assert response.destination == STA

    def test_ap_ignores_other_bss(self):
        ap = make_ap(0, 0.0, 0.0)
        other = make_ap(1, 10.0, 0.0)
        request = association_request(STA, other.bssid, ap.channel, 1.0,
                                      other.ssid)
        assert ap.handle_association(request, 1.01) is None

    def test_ap_ignores_wrong_channel(self):
        ap = make_ap(0, 0.0, 0.0, channel=11)
        request = association_request(STA, ap.bssid, 6, 1.0, ap.ssid)
        assert ap.handle_association(request, 1.01) is None

    def test_ap_ignores_non_association_frames(self):
        ap = make_ap(0, 0.0, 0.0)
        assert ap.handle_association(
            authentication(STA, ap.bssid, ap.channel, 1.0), 1.01) is None


class TestHandshakeInWorld:
    def test_sniffer_learns_association_from_handshake(self):
        """The handshake itself (not just later data frames) reveals
        the (station, BSS) pair to the targeted attack."""
        aps = [make_ap(0, 100.0, 100.0)]
        medium = Medium(FreeSpaceModel())
        sniffer = build_marauder_sniffer(Point(150.0, 150.0), medium)
        world = CampusWorld(aps, medium, sniffer=sniffer, seed=0)
        station = MobileStation(
            mac=MacAddress.random(np.random.default_rng(3)),
            position=Point(120.0, 100.0),
            profile=PROFILES["standard"],
            auto_associate=True,
        )
        world.add_station(station)
        world.run(duration_s=70.0)
        assert station.associated_bssid == aps[0].bssid
        associations = world.sniffer.store.known_associations()
        assert (station.mac, aps[0].bssid, aps[0].channel) in associations

    def test_association_response_counts_toward_gamma(self):
        from repro.net80211.medium import ReceivedFrame
        from repro.sniffer.observation import ObservationStore

        ap = make_ap(0, 0.0, 0.0)
        response = association_response(ap.bssid, STA, ap.channel, 1.0,
                                        ap.ssid)
        store = ObservationStore()
        store.ingest(ReceivedFrame(response, -70.0, 20.0, ap.channel, 1.0))
        assert store.gamma(STA) == {ap.bssid}
