"""802.11w (PMF) tests: the standardized deauth-attack defense."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.net80211.frames import deauthentication
from repro.net80211.mac import MacAddress
from repro.net80211.station import PROFILES, MobileStation
from repro.sniffer.active import ActiveAttacker

STA = MacAddress.parse("00:1b:63:11:22:33")
AP = MacAddress.parse("00:15:6d:44:55:66")


def make_station(pmf):
    station = MobileStation(mac=STA, position=Point(0, 0),
                            profile=PROFILES["passive"],
                            pmf_enabled=pmf)
    station.associate(AP, channel=6)
    return station


class TestPmf:
    def test_spoofed_deauth_rejected(self):
        station = make_station(pmf=True)
        forged = deauthentication(AP, STA, AP, 6, 10.0)  # no MIC
        station.handle_frame(forged, now=10.0)
        assert station.is_associated  # the forgery bounced

    def test_genuine_protected_deauth_accepted(self):
        station = make_station(pmf=True)
        genuine = deauthentication(AP, STA, AP, 6, 10.0, protected=True)
        station.handle_frame(genuine, now=10.0)
        assert not station.is_associated

    def test_non_pmf_station_accepts_forgery(self):
        station = make_station(pmf=False)
        forged = deauthentication(AP, STA, AP, 6, 10.0)
        station.handle_frame(forged, now=10.0)
        assert not station.is_associated

    def test_attacker_cannot_mint_protected_frames(self):
        attacker = ActiveAttacker(position=Point(0, 0))
        for frame in attacker.craft_deauths([(STA, AP, 6)], now=0.0):
            assert frame.elements.get("mic_valid") != "1"
        broadcast = attacker.craft_broadcast_deauth(AP, 6, now=0.0)
        assert broadcast.elements.get("mic_valid") != "1"

    def test_pmf_defeats_the_active_attack_end_to_end(self):
        """A PMF victim stays silent through the whole deauth barrage —
        the standardized answer to the paper's active attack."""
        from repro.net80211.medium import Medium
        from repro.radio.propagation import FreeSpaceModel
        from repro.sim.world import CampusWorld
        from repro.sniffer.receiver import build_marauder_sniffer
        from tests.test_sim_world import make_ap

        aps = [make_ap(0, 100.0, 100.0)]
        medium = Medium(FreeSpaceModel())
        sniffer = build_marauder_sniffer(Point(150.0, 150.0), medium)
        world = CampusWorld(aps, medium, sniffer=sniffer, seed=0)
        victim = MobileStation(
            mac=MacAddress.random(np.random.default_rng(1)),
            position=Point(120.0, 100.0),
            profile=PROFILES["passive"],
            pmf_enabled=True)
        victim.associate(aps[0].bssid, aps[0].channel)
        world.add_station(victim)
        world.arm_attacker(ActiveAttacker(position=Point(150.0, 150.0)),
                           interval_s=10.0)
        world.run(duration_s=120.0)
        assert victim.is_associated
        assert victim.mac not in world.sniffer.store.probing_mobiles
