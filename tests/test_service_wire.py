"""Wire-protocol unit tests: framing, CRC, handshake, fault seams.

The socket transports trust :mod:`repro.service.wire` to turn every
byte-level failure — truncation, corruption, version skew, mid-message
disconnects — into one typed :class:`WireError` before any payload is
unpickled.  These tests drive the codec over real socketpairs.
"""

import socket
import struct
import threading

import pytest

from repro.faults import (DROPPED, FaultInjector, ReproError,
                          parse_fault_spec, use_injector)
from repro.service import wire


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


def recv_in_thread(sock):
    """Run read_frame in a thread so the writer side can act freely."""
    box = {}

    def reader():
        try:
            box["frame"] = wire.read_frame(sock)
        except Exception as error:  # noqa: BLE001 - surfaced to test
            box["error"] = error

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    return thread, box


class TestFraming:
    def test_roundtrip_every_frame_type(self, pair):
        left, right = pair
        for ftype in (wire.HELLO, wire.HELLO_OK, wire.HELLO_REJECT,
                      wire.DATA, wire.CREDIT, wire.HEARTBEAT, wire.BYE):
            wire.send_frame(left, ftype, b"payload-%d" % ftype)
            assert wire.read_frame(right) == (ftype,
                                              b"payload-%d" % ftype)

    def test_empty_payload_roundtrip(self, pair):
        left, right = pair
        wire.send_frame(left, wire.BYE)
        assert wire.read_frame(right) == (wire.BYE, b"")

    def test_clean_eof_is_connection_lost(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(wire.ConnectionLost):
            wire.read_frame(right)

    def test_truncated_header_is_truncated_frame(self, pair):
        left, right = pair
        left.sendall(wire.encode_frame(wire.DATA, b"x" * 64)[:3])
        left.close()
        with pytest.raises(wire.TruncatedFrame):
            wire.read_frame(right)

    def test_mid_message_disconnect_is_truncated_frame(self, pair):
        # The header arrives whole and promises a payload the peer
        # dies before delivering — the mid-message disconnect case.
        left, right = pair
        frame = wire.encode_frame(wire.DATA, b"y" * 1024)
        left.sendall(frame[:len(frame) // 2])
        left.close()
        with pytest.raises(wire.TruncatedFrame):
            wire.read_frame(right)

    def test_bad_crc_is_crc_mismatch(self, pair):
        left, right = pair
        frame = bytearray(wire.encode_frame(wire.DATA, b"sensitive"))
        frame[-6] ^= 0x40  # flip one payload bit; CRC no longer matches
        left.sendall(bytes(frame))
        with pytest.raises(wire.CrcMismatch):
            wire.read_frame(right)

    def test_version_mismatch(self, pair):
        left, right = pair
        frame = bytearray(wire.encode_frame(wire.DATA, b"z"))
        frame[4] = wire.WIRE_VERSION + 1
        left.sendall(bytes(frame))
        with pytest.raises(wire.VersionMismatch):
            wire.read_frame(right)

    def test_bad_magic(self, pair):
        left, right = pair
        frame = bytearray(wire.encode_frame(wire.DATA, b"z"))
        frame[0:4] = b"HTTP"
        left.sendall(bytes(frame))
        with pytest.raises(wire.BadMagic):
            wire.read_frame(right)

    def test_insane_length_rejected_before_allocation(self, pair):
        left, right = pair
        header = struct.pack(">4sBBI", wire.MAGIC, wire.WIRE_VERSION,
                             wire.DATA, wire.MAX_FRAME_BYTES + 1)
        left.sendall(header)
        with pytest.raises(wire.WireError):
            wire.read_frame(right)

    def test_oversized_payload_refused_at_encode_time(self):
        with pytest.raises(ValueError):
            wire.encode_frame(wire.DATA,
                              b"\0" * (wire.MAX_FRAME_BYTES + 1))


class TestPayloadHelpers:
    def test_data_roundtrip(self):
        seq, message = wire.unpack_data(
            wire.pack_data(7, ("frames", [1, 2, 3])))
        assert seq == 7
        assert message == ("frames", [1, 2, 3])

    def test_data_too_short(self):
        with pytest.raises(wire.WireError):
            wire.unpack_data(b"\0\0")

    def test_count_roundtrip(self):
        assert wire.unpack_count(wire.pack_count(2 ** 40)) == 2 ** 40

    def test_count_wrong_size(self):
        with pytest.raises(wire.WireError):
            wire.unpack_count(b"\0" * 7)

    def test_dict_roundtrip(self):
        payload = wire.pack_dict({"run_id": "abc", "shard": 3})
        assert wire.unpack_dict(payload) == {"run_id": "abc", "shard": 3}

    def test_dict_rejects_non_dict(self):
        import pickle
        with pytest.raises(wire.WireError):
            wire.unpack_dict(pickle.dumps([1, 2]))

    def test_dict_rejects_garbage(self):
        with pytest.raises(wire.WireError):
            wire.unpack_dict(b"\xff\xfe not a pickle")


class TestHello:
    def test_hello_roundtrip(self, pair):
        left, right = pair
        wire.send_frame(left, wire.HELLO,
                        wire.hello_payload(run_id="r", shard=1))
        assert wire.read_hello(right, timeout=5.0) == {"run_id": "r",
                                                       "shard": 1}

    def test_non_hello_first_frame_rejected(self, pair):
        left, right = pair
        wire.send_frame(left, wire.DATA, wire.pack_data(1, "x"))
        with pytest.raises(wire.WireError):
            wire.read_hello(right, timeout=5.0)

    def test_silent_peer_times_out_as_connection_lost(self, pair):
        _, right = pair
        with pytest.raises(wire.ConnectionLost):
            wire.read_hello(right, timeout=0.05)

    def test_hello_rejected_is_not_a_wire_error(self):
        # The reconnect retry filter is (WireError, OSError): a peer's
        # explicit rejection must escape it instead of being retried.
        assert not issubclass(wire.HelloRejected, wire.WireError)
        assert issubclass(wire.HelloRejected, ReproError)


class TestFaultSeams:
    def test_send_drop_swallows_the_frame(self, pair):
        left, right = pair
        injector = FaultInjector(
            [parse_fault_spec("socket.send:drop,times=1")])
        with use_injector(injector):
            wire.send_frame(left, wire.DATA, b"lost")
            wire.send_frame(left, wire.DATA, b"kept")
        assert wire.read_frame(right) == (wire.DATA, b"kept")
        assert injector.total_fired == 1

    def test_recv_drop_skips_to_the_next_frame(self, pair):
        left, right = pair
        wire.send_frame(left, wire.DATA, b"first")
        wire.send_frame(left, wire.DATA, b"second")
        injector = FaultInjector(
            [parse_fault_spec("socket.recv:drop,times=1")])
        with use_injector(injector):
            assert wire.read_frame(right) == (wire.DATA, b"second")
        assert injector.total_fired == 1

    def test_global_injector_reaches_other_threads(self, pair):
        # The socket transports read frames on internal threads; the
        # all_threads injector must be visible there.
        left, right = pair
        injector = FaultInjector(
            [parse_fault_spec("socket.recv:drop,times=1")])
        with use_injector(injector, all_threads=True):
            thread, box = recv_in_thread(right)
            wire.send_frame(left, wire.DATA, b"dropped")
            wire.send_frame(left, wire.DATA, b"seen")
            thread.join(timeout=5)
        assert box.get("frame") == (wire.DATA, b"seen")
        assert injector.total_fired == 1

    def test_dropped_sentinel_never_leaks(self, pair):
        left, right = pair
        injector = FaultInjector(
            [parse_fault_spec("socket.send:drop,times=1")])
        with use_injector(injector):
            assert wire.send_frame(left, wire.BYE) is None
        right.setblocking(False)
        with pytest.raises(BlockingIOError):
            right.recv(1)

    def test_dropped_is_a_distinct_sentinel(self):
        assert DROPPED is not None
