"""Compactor: JSONL → columnar conversion and multi-capture merging."""

import pytest

from repro.capture import (
    ColumnarReader,
    JsonlReader,
    compact_captures,
    convert_capture,
    make_capture_writer,
    open_capture,
    sniff_format,
)
from repro.capture.records import CaptureError
from repro.net80211.frames import probe_request, probe_response
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid

STA = MacAddress.parse("00:1b:63:11:22:33")
AP = MacAddress.parse("00:15:6d:44:55:66")


def make_records(count, t0=0.0, step=1.0):
    records = []
    for i in range(count):
        ts = t0 + i * step
        if i % 2:
            frame = probe_response(AP, STA, channel=6, timestamp=ts,
                                   ssid=Ssid("campus"))
        else:
            frame = probe_request(STA, channel=6, timestamp=ts,
                                  ssid=Ssid("campus"))
        records.append(ReceivedFrame(frame, -65.0, 21.0, 6, ts))
    return records


def write_jsonl(path, records):
    with make_capture_writer(path, format="jsonl") as writer:
        for record in records:
            writer.write(record)


class TestConvert:
    def test_jsonl_to_columnar_and_back(self, tmp_path):
        records = make_records(50)
        jsonl = tmp_path / "a.jsonl"
        columnar = tmp_path / "a.cap"
        back = tmp_path / "back.jsonl"
        write_jsonl(jsonl, records)

        report = convert_capture(jsonl, columnar)
        assert report["records"] == 50
        assert report["format"] == "columnar"
        assert sniff_format(columnar) == "columnar"
        assert list(ColumnarReader(columnar)) == records

        report_back = convert_capture(columnar, back, format="jsonl")
        assert report_back["records"] == 50
        assert list(JsonlReader(back)) == records

    def test_convert_forwards_writer_options(self, tmp_path):
        records = make_records(20)
        jsonl = tmp_path / "a.jsonl"
        write_jsonl(jsonl, records)
        dst = tmp_path / "a.cap"
        report = convert_capture(jsonl, dst, block_records=6)
        assert report["blocks"] == (20 + 5) // 6
        assert ColumnarReader(dst).info()["blocks"] == report["blocks"]

    def test_strict_convert_raises_on_malformed(self, tmp_path):
        jsonl = tmp_path / "bad.jsonl"
        write_jsonl(jsonl, make_records(3))
        with jsonl.open("a") as handle:
            handle.write("{not json\n")
        with pytest.raises((CaptureError, ValueError)):
            convert_capture(jsonl, tmp_path / "out.cap", strict=True)

    def test_lenient_convert_skips_malformed(self, tmp_path):
        jsonl = tmp_path / "bad.jsonl"
        write_jsonl(jsonl, make_records(3))
        with jsonl.open("a") as handle:
            handle.write("{not json\n")
        report = convert_capture(jsonl, tmp_path / "out.cap",
                                 strict=False)
        assert report["records"] == 3
        assert report["skipped"] == 1


class TestCompact:
    def test_multi_source_merge_globally_sorted(self, tmp_path):
        """Interleaved sources merge into one time-sorted store."""
        a = make_records(20, t0=0.0, step=2.0)    # even timestamps
        b = make_records(20, t0=1.0, step=2.0)    # odd timestamps
        pa, pb = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_jsonl(pa, a)
        write_jsonl(pb, b)
        out = tmp_path / "merged.cap"
        report = compact_captures([pa, pb], out, block_records=8)
        assert report["records"] == 40
        assert len(report["sources"]) == 2
        merged = list(ColumnarReader(out))
        stamps = [r.rx_timestamp for r in merged]
        assert stamps == sorted(stamps)
        assert stamps == [float(i) for i in range(40)]
        assert ColumnarReader(out).info()["globally_sorted"]

    def test_reordered_input_globally_sorted(self, tmp_path):
        """A shuffled capture compacts to a globally sorted one."""
        records = make_records(30)
        shuffled = records[::3] + records[1::3] + records[2::3]
        src = tmp_path / "shuffled.jsonl"
        write_jsonl(src, shuffled)
        out = tmp_path / "sorted.cap"
        compact_captures([src], out, block_records=10)
        assert list(ColumnarReader(out)) == records

    def test_mixed_format_sources(self, tmp_path):
        """Compaction accepts any readable codec per source."""
        a, b = make_records(10, t0=0.0), make_records(10, t0=100.0)
        pa = tmp_path / "a.jsonl"
        pb = tmp_path / "b.cap"
        write_jsonl(pa, a)
        convert_capture(pa, pb)  # columnar copy of a
        out = tmp_path / "merged.cap"
        report = compact_captures([pa, pb], out)
        assert report["records"] == 20
        merged = list(open_capture(out))
        assert merged == sorted(a + a, key=lambda r: r.rx_timestamp)

    def test_compact_to_jsonl(self, tmp_path):
        records = make_records(12)
        src = tmp_path / "a.jsonl"
        write_jsonl(src, records)
        out = tmp_path / "out.jsonl"
        report = compact_captures([src], out, format="jsonl")
        assert report["format"] == "jsonl"
        assert "blocks" not in report
        assert list(JsonlReader(out)) == records

    def test_stable_merge_preserves_tie_order(self, tmp_path):
        """Equal rx timestamps keep source order (stable sort)."""
        ties = []
        for i in range(6):
            frame = probe_request(STA, channel=6, timestamp=5.0,
                                  ssid=Ssid("campus"))
            ties.append(ReceivedFrame(frame, -60.0 - i, 20.0, 6, 5.0))
        src = tmp_path / "ties.jsonl"
        write_jsonl(src, ties)
        out = tmp_path / "ties.cap"
        compact_captures([src], out)
        assert [r.rssi_dbm for r in ColumnarReader(out)] == [
            r.rssi_dbm for r in ties]

    def test_aux_survives_compaction(self, tmp_path):
        """Element dicts (aux blob payloads) survive the merge."""
        frame = probe_response(AP, STA, channel=6, timestamp=1.0,
                               ssid=Ssid("campus"))
        frame = type(frame)(**{**frame.__dict__,
                               "elements": {"vendor": "acme"}})
        record = ReceivedFrame(frame, -60.0, 20.0, 6, 1.0)
        src = tmp_path / "aux.jsonl"
        write_jsonl(src, [record])
        out = tmp_path / "aux.cap"
        compact_captures([src], out)
        (recovered,) = list(ColumnarReader(out))
        assert recovered.frame.elements == {"vendor": "acme"}
        assert recovered == record
