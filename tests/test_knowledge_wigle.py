"""WiGLE CSV import/export tests."""

import pytest

from repro.geo.enu import LocalTangentPlane
from repro.geo.wgs84 import GeodeticCoordinate
from repro.knowledge.apdb import ApDatabase, ApRecord
from repro.knowledge.wigle import export_wigle_csv, import_wigle_csv
from repro.geometry.point import Point
from repro.net80211.mac import MacAddress
from repro.net80211.ssid import Ssid

UML = GeodeticCoordinate(42.6555, -71.3262, 0.0)


@pytest.fixture
def plane():
    return LocalTangentPlane(UML)


@pytest.fixture
def sample_db():
    return ApDatabase([
        ApRecord(bssid=MacAddress.parse("00:15:6d:00:00:01"),
                 ssid=Ssid("CampusNet"), location=Point(100.0, 200.0),
                 max_range_m=55.0, channel=6),
        ApRecord(bssid=MacAddress.parse("00:15:6d:00:00:02"),
                 ssid=Ssid(""), location=Point(-50.0, 30.0),
                 channel=None),
    ])


class TestRoundtrip:
    def test_export_import(self, tmp_path, plane, sample_db):
        path = tmp_path / "wigle.csv"
        export_wigle_csv(sample_db, path, plane)
        recovered = import_wigle_csv(path, plane)
        assert len(recovered) == 2
        for record in sample_db:
            loaded = recovered.get(record.bssid)
            assert loaded is not None
            assert loaded.ssid == record.ssid
            assert loaded.channel == record.channel
            # Positions survive the geodetic roundtrip to sub-meter.
            assert loaded.location.distance_to(record.location) < 0.01

    def test_import_drops_ranges(self, tmp_path, plane, sample_db):
        # WiGLE publishes no transmission distances.
        path = tmp_path / "wigle.csv"
        export_wigle_csv(sample_db, path, plane)
        recovered = import_wigle_csv(path, plane)
        assert all(r.max_range_m is None for r in recovered)

    def test_missing_columns_rejected(self, tmp_path, plane):
        path = tmp_path / "bad.csv"
        path.write_text("netid,ssid\n00:11:22:33:44:55,x\n")
        with pytest.raises(ValueError, match="missing columns"):
            import_wigle_csv(path, plane)

    def test_csv_format_shape(self, tmp_path, plane, sample_db):
        path = tmp_path / "wigle.csv"
        export_wigle_csv(sample_db, path, plane)
        header = path.read_text().splitlines()[0]
        assert header == "netid,ssid,trilat,trilong,channel"

    def test_import_blank_channel(self, tmp_path, plane):
        path = tmp_path / "wigle.csv"
        path.write_text(
            "netid,ssid,trilat,trilong,channel\n"
            "00:11:22:33:44:55,net,42.6555,-71.3262,\n")
        db = import_wigle_csv(path, plane)
        record = db.get(MacAddress.parse("00:11:22:33:44:55"))
        assert record.channel is None
