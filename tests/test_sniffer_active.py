"""Active-attack (spoofed deauthentication) tests."""

import pytest

from repro.geometry.point import Point
from repro.net80211.frames import FrameType
from repro.net80211.mac import BROADCAST_MAC, MacAddress
from repro.sniffer.active import ActiveAttacker

STA = MacAddress.parse("00:1b:63:11:22:33")
AP = MacAddress.parse("00:15:6d:44:55:66")


class TestActiveAttacker:
    def test_targeted_deauth_spoofs_ap(self):
        attacker = ActiveAttacker(position=Point(0, 0))
        frames = attacker.craft_deauths([(STA, AP, 6)], now=10.0)
        assert len(frames) == 1
        frame = frames[0]
        assert frame.frame_type is FrameType.DEAUTHENTICATION
        assert frame.source == AP  # forged
        assert frame.destination == STA
        assert frame.bssid == AP
        assert frame.channel == 6

    def test_broadcast_deauth(self):
        attacker = ActiveAttacker(position=Point(0, 0))
        frame = attacker.craft_broadcast_deauth(AP, channel=11, now=5.0)
        assert frame.destination == BROADCAST_MAC
        assert frame.source == AP
        assert frame.channel == 11

    def test_frames_sent_counter(self):
        attacker = ActiveAttacker(position=Point(0, 0))
        attacker.craft_deauths([(STA, AP, 6), (STA, AP, 6)], now=0.0)
        attacker.craft_broadcast_deauth(AP, 6, now=1.0)
        assert attacker.frames_sent == 3

    def test_attack_antenna_gain_applied(self):
        attacker = ActiveAttacker(position=Point(0, 0),
                                  tx_antenna_gain_dbi=15.0)
        frame = attacker.craft_broadcast_deauth(AP, 6, now=0.0)
        assert frame.tx_antenna_gain_dbi == 15.0

    def test_forces_station_rescan_end_to_end(self):
        from repro.net80211.station import PROFILES, MobileStation

        station = MobileStation(mac=STA, position=Point(0, 0),
                                profile=PROFILES["passive"])
        station.associate(AP)
        attacker = ActiveAttacker(position=Point(0, 0))
        frame = attacker.craft_broadcast_deauth(AP, 6, now=10.0)
        station.handle_frame(frame, now=10.0)
        assert not station.is_associated
        assert station.tick(now=11.0)  # the forced probe burst
