"""Exposition formats: golden Prometheus text, JSON round trip, CLI."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import MetricsRegistry, format_snapshot

GOLDEN = Path(__file__).parent / "data" / "metrics_golden.prom"


def demo_registry() -> MetricsRegistry:
    """A small registry whose exposition is bit-for-bit deterministic.

    Observed values are binary-exact so the histogram sum renders the
    same on every platform.
    """
    registry = MetricsRegistry()
    registry.counter("repro.demo.requests", code=200).inc(3)
    registry.counter("repro.demo.requests", code=404).inc()
    registry.gauge("repro.demo.entries").set(7)
    latency = registry.histogram("repro.demo.latency",
                                 bounds=(0.25, 1.0, 2.0))
    for value in (0.25, 0.5, 0.5, 4.0):
        latency.observe(value)
    return registry


class TestPrometheusText:
    def test_matches_golden_file(self):
        assert demo_registry().render_prometheus() == GOLDEN.read_text()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_survives_snapshot_round_trip(self):
        """merge(snapshot) reproduces the exposition exactly."""
        snapshot = json.loads(json.dumps(demo_registry().snapshot()))
        rebuilt = MetricsRegistry()
        rebuilt.merge(snapshot)
        assert rebuilt.render_prometheus() == GOLDEN.read_text()


class TestFormatSnapshot:
    def test_sections_and_values(self):
        text = format_snapshot(demo_registry().snapshot())
        assert "counters:" in text
        assert "repro.demo.requests{code=200}  3" in text
        assert "gauges:" in text
        assert "histograms:" in text
        assert "count=4" in text

    def test_empty_snapshot(self):
        assert format_snapshot({}) == "(empty registry)"


class TestMetricsCommand:
    @pytest.fixture
    def snapshot_file(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(demo_registry().snapshot()))
        return path

    def test_prints_human_summary(self, snapshot_file, capsys):
        assert main(["metrics", str(snapshot_file)]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "repro.demo.requests{code=200}" in out

    def test_prometheus_flag_matches_golden(self, snapshot_file, capsys):
        assert main(["metrics", str(snapshot_file), "--prometheus"]) == 0
        assert capsys.readouterr().out == GOLDEN.read_text()

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["metrics", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_non_snapshot_json_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        assert main(["metrics", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err
