"""Vectorized geometry kernels agree with the scalar reference.

The scalar ``DiscIntersection`` / ``circle_intersections`` code is the
reference implementation; the NumPy kernels are the fast path.  These
property tests pin their agreement to 1e-9 over randomized disc sets
plus the constructed edge cases (tangency, nested discs, empty
intersections, concentric circles).
"""

import numpy as np
import pytest

from repro.geometry import kernels
from repro.geometry.circle import Circle, circle_intersections
from repro.geometry.point import Point
from repro.geometry.region import (
    DiscIntersection,
    kernel_default,
    set_kernel_default,
)

TOL = 1e-9


def random_disc_set(rng, k, spread=60.0, r_low=40.0, r_high=140.0):
    """k discs scattered so intersections are non-trivial but common."""
    cx, cy = rng.uniform(-50.0, 50.0, 2)
    return [
        Circle(Point(float(cx + rng.uniform(-spread, spread)),
                     float(cy + rng.uniform(-spread, spread))),
               float(rng.uniform(r_low, r_high)))
        for _ in range(k)
    ]


def assert_regions_agree(discs):
    scalar = DiscIntersection(discs, use_kernels=False)
    fast = DiscIntersection(discs, use_kernels=True)
    assert fast.is_empty == scalar.is_empty
    assert len(fast.vertices) == len(scalar.vertices)
    for got, want in zip(fast.vertices, scalar.vertices):
        assert got.is_close(want, TOL)
    assert fast.area == pytest.approx(scalar.area, abs=1e-6, rel=1e-9)
    scalar_centroid = scalar.centroid()
    fast_centroid = fast.centroid()
    if scalar_centroid is None:
        assert fast_centroid is None
    else:
        assert fast_centroid.is_close(scalar_centroid, 1e-6)


class TestVertexAgreement:
    @pytest.mark.parametrize("k", [2, 3, 4, 6, 10])
    def test_randomized_disc_sets(self, k):
        rng = np.random.default_rng(100 + k)
        for _ in range(40):
            assert_regions_agree(random_disc_set(rng, k))

    def test_far_apart_empty_intersections(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            discs = [
                Circle(Point(float(i * 500.0 + rng.uniform(-10, 10)),
                             float(rng.uniform(-10, 10))),
                       float(rng.uniform(5.0, 40.0)))
                for i in range(4)
            ]
            region = DiscIntersection(discs, use_kernels=True)
            assert region.is_empty
            assert_regions_agree(discs)

    def test_externally_tangent_pair(self):
        discs = [Circle(Point(0.0, 0.0), 1.0), Circle(Point(3.0, 0.0), 2.0)]
        region = DiscIntersection(discs, use_kernels=True)
        assert len(region.vertices) == 1
        assert region.vertices[0].is_close(Point(1.0, 0.0), TOL)
        assert_regions_agree(discs)

    def test_internally_tangent_pair(self):
        discs = [Circle(Point(0.0, 0.0), 5.0), Circle(Point(3.0, 0.0), 2.0)]
        assert_regions_agree(discs)

    def test_nested_disc_region_is_full_disc(self):
        discs = [Circle(Point(0.0, 0.0), 50.0),
                 Circle(Point(5.0, 0.0), 10.0),
                 Circle(Point(4.0, 1.0), 20.0)]
        scalar = DiscIntersection(discs, use_kernels=False)
        fast = DiscIntersection(discs, use_kernels=True)
        assert not fast.is_empty
        assert fast.vertices == []
        assert fast._full_disc == scalar._full_disc
        assert fast.area == pytest.approx(scalar.area, rel=1e-12)

    def test_concentric_circles(self):
        discs = [Circle(Point(1.0, 2.0), 10.0), Circle(Point(1.0, 2.0), 4.0)]
        assert_regions_agree(discs)

    def test_identical_circles(self):
        discs = [Circle(Point(1.0, 2.0), 10.0), Circle(Point(1.0, 2.0), 10.0)]
        assert_regions_agree(discs)

    def test_single_disc(self):
        discs = [Circle(Point(3.0, 4.0), 25.0)]
        assert_regions_agree(discs)


class TestPairwiseCandidates:
    """Kernel candidate generation vs scalar circle_intersections."""

    @pytest.mark.parametrize("pair", [
        (Circle(Point(0.0, 0.0), 10.0), Circle(Point(12.0, 5.0), 8.0)),
        (Circle(Point(0.0, 0.0), 1.0), Circle(Point(3.0, 0.0), 2.0)),
        (Circle(Point(0.0, 0.0), 5.0), Circle(Point(1.0, 0.0), 2.0)),
        (Circle(Point(0.0, 0.0), 5.0), Circle(Point(0.0, 0.0), 5.0)),
        (Circle(Point(0.0, 0.0), 2.0), Circle(Point(100.0, 0.0), 3.0)),
    ])
    def test_matches_scalar_pairwise(self, pair):
        scalar = circle_intersections(*pair)
        centers, radii = kernels.discs_as_arrays(pair)
        geom = kernels.pair_geometry(centers, radii)
        got = kernels.pairwise_intersection_candidates(geom)
        assert len(got) == len(scalar)
        for row, want in zip(got, scalar):
            assert abs(row[0] - want.x) <= TOL
            assert abs(row[1] - want.y) <= TOL

    def test_randomized_pairs(self):
        rng = np.random.default_rng(42)
        for _ in range(200):
            a = Circle(Point(*map(float, rng.uniform(-50, 50, 2))),
                       float(rng.uniform(1.0, 80.0)))
            b = Circle(Point(*map(float, rng.uniform(-50, 50, 2))),
                       float(rng.uniform(1.0, 80.0)))
            scalar = circle_intersections(a, b)
            centers, radii = kernels.discs_as_arrays([a, b])
            got = kernels.pairwise_intersection_candidates(
                kernels.pair_geometry(centers, radii))
            assert len(got) == len(scalar)
            for row, want in zip(got, scalar):
                assert abs(row[0] - want.x) <= TOL
                assert abs(row[1] - want.y) <= TOL


class TestBatchKernel:
    @pytest.mark.parametrize("k", [2, 3, 6, 10])
    def test_batch_matches_scalar_reference(self, k):
        rng = np.random.default_rng(900 + k)
        disc_sets = [random_disc_set(rng, k) for _ in range(32)]
        centers = np.array([[(d.center.x, d.center.y) for d in s]
                            for s in disc_sets])
        radii = np.array([[d.radius for d in s] for s in disc_sets])
        vertex_sets = kernels.batch_intersection_vertices(centers, radii)
        assert len(vertex_sets) == len(disc_sets)
        for discs, coords in zip(disc_sets, vertex_sets):
            want = DiscIntersection(discs, use_kernels=False).vertices
            assert len(coords) == len(want)
            for row, vertex in zip(coords, want):
                assert abs(row[0] - vertex.x) <= TOL
                assert abs(row[1] - vertex.y) <= TOL

    def test_single_disc_sets_have_no_vertices(self):
        centers = np.zeros((3, 1, 2))
        radii = np.ones((3, 1))
        for coords in kernels.batch_intersection_vertices(centers, radii):
            assert coords.shape == (0, 2)


class TestFeasibilityScan:
    @pytest.mark.parametrize("k", [2, 4, 7])
    def test_nonempty_matches_region_emptiness(self, k):
        rng = np.random.default_rng(300 + k)
        for _ in range(25):
            discs = random_disc_set(rng, k, spread=150.0,
                                    r_low=20.0, r_high=90.0)
            centers, radii = kernels.discs_as_arrays(discs)
            geom = kernels.pair_geometry(centers, radii)
            for scale in (1.0, 1.7, 3.0, 16.0):
                scaled = [Circle(d.center, d.radius * scale) for d in discs]
                want = not DiscIntersection(scaled,
                                            use_kernels=False).is_empty
                assert kernels.nonempty_at_scale(geom, scale) == want

    def test_single_disc_always_nonempty(self):
        centers, radii = kernels.discs_as_arrays(
            [Circle(Point(0.0, 0.0), 5.0)])
        geom = kernels.pair_geometry(centers, radii)
        assert kernels.nonempty_at_scale(geom, 1.0)


class TestSupportKernels:
    def test_contains_mask_matches_circle_contains(self):
        rng = np.random.default_rng(11)
        discs = random_disc_set(rng, 5)
        points = [Point(*map(float, rng.uniform(-150, 150, 2)))
                  for _ in range(64)]
        centers, radii = kernels.discs_as_arrays(discs)
        mask = kernels.contains_mask(kernels.points_as_array(points),
                                     centers, radii, slack=0.0)
        for p_idx, point in enumerate(points):
            for d_idx, disc in enumerate(discs):
                assert mask[p_idx, d_idx] == disc.contains(point, tol=0.0)

    def test_dedupe_keep_first_chain_semantics(self):
        # a~b and b~c but a!~c: the scalar greedy keeps a and c.
        points = np.array([[0.0, 0.0], [0.9, 0.0], [1.8, 0.0]])
        got = kernels.dedupe_rows(points, tol=1.0)
        assert got.shape == (2, 2)
        assert got[0].tolist() == [0.0, 0.0]
        assert got[1].tolist() == [1.8, 0.0]

    def test_pairwise_distance_matrix(self):
        rng = np.random.default_rng(5)
        points = [Point(*map(float, rng.uniform(-100, 100, 2)))
                  for _ in range(12)]
        coords = kernels.points_as_array(points)
        matrix = kernels.pairwise_distance_matrix(coords)
        for i, a in enumerate(points):
            for j, b in enumerate(points):
                assert matrix[i, j] == pytest.approx(a.distance_to(b),
                                                     abs=TOL)

    def test_round_trip_point_packing(self):
        points = [Point(1.5, -2.25), Point(0.0, 3.0)]
        back = kernels.array_as_points(kernels.points_as_array(points))
        assert back == points


class TestKernelDefaultToggle:
    def test_toggle_round_trips(self):
        original = kernel_default()
        try:
            previous = set_kernel_default(False)
            assert previous == original
            assert kernel_default() is False
            discs = [Circle(Point(0.0, 0.0), 10.0)] * 6
            assert DiscIntersection(discs)._use_kernels is False
        finally:
            set_kernel_default(original)

    def test_small_sets_default_to_scalar(self):
        discs = [Circle(Point(float(i), 0.0), 10.0) for i in range(3)]
        assert DiscIntersection(discs)._use_kernels is False
        assert DiscIntersection(discs, use_kernels=True)._use_kernels is True


class TestMonteCarloVectorized:
    def test_area_estimate_matches_exact(self):
        rng = np.random.default_rng(21)
        discs = random_disc_set(rng, 4)
        region = DiscIntersection(discs)
        if region.is_empty:
            pytest.skip("degenerate draw")
        exact = region.area
        estimate = region.monte_carlo_area(np.random.default_rng(3),
                                           samples=40000)
        assert estimate == pytest.approx(exact, rel=0.05)

    def test_centroid_estimate_matches_exact(self):
        discs = [Circle(Point(0.0, 0.0), 80.0),
                 Circle(Point(100.0, 0.0), 80.0),
                 Circle(Point(50.0, 90.0), 80.0)]
        region = DiscIntersection(discs)
        exact = region.centroid()
        estimate = region.monte_carlo_centroid(np.random.default_rng(3),
                                               samples=40000)
        assert estimate is not None
        assert estimate.is_close(exact, 2.0)

    def test_empty_region_monte_carlo(self):
        discs = [Circle(Point(0.0, 0.0), 5.0),
                 Circle(Point(100.0, 0.0), 5.0)]
        region = DiscIntersection(discs)
        assert region.monte_carlo_area(np.random.default_rng(0)) == 0.0
        assert region.monte_carlo_centroid(np.random.default_rng(0)) is None
