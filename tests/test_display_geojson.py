"""GeoJSON export tests."""

import json

import pytest

from repro.display.geojson import export_geojson
from repro.geo.sites import UML_NORTH_CAMPUS, uml_plane
from repro.geometry.point import Point
from repro.localization import MLoc
from repro.net80211.mac import MacAddress


@pytest.fixture
def plane():
    return uml_plane()


class TestGeoJsonExport:
    def test_ap_features(self, plane, square_db):
        collection = export_geojson(plane, database=square_db)
        assert collection["type"] == "FeatureCollection"
        aps = [f for f in collection["features"]
               if f["properties"]["kind"] == "access_point"]
        assert len(aps) == 4
        for feature in aps:
            lon, lat = feature["geometry"]["coordinates"]
            # Within ~1 km of the UML origin.
            assert abs(lat - UML_NORTH_CAMPUS.latitude_deg) < 0.02
            assert abs(lon - UML_NORTH_CAMPUS.longitude_deg) < 0.02
            assert feature["properties"]["max_range_m"] == 80.0

    def test_estimate_features(self, plane, square_db):
        mobile = MacAddress(0xABC)
        estimate = MLoc(square_db).locate(square_db.bssids)
        collection = export_geojson(plane,
                                    estimates={mobile: estimate})
        features = collection["features"]
        assert len(features) == 1
        properties = features[0]["properties"]
        assert properties["kind"] == "estimate"
        assert properties["algorithm"] == "m-loc"
        assert properties["used_ap_count"] == 4
        assert properties["region_area_m2"] > 0

    def test_none_estimates_skipped(self, plane):
        collection = export_geojson(plane,
                                    estimates={MacAddress(1): None})
        assert collection["features"] == []

    def test_truth_features(self, plane):
        collection = export_geojson(
            plane, truths=[(MacAddress(1), Point(10.0, 20.0))])
        assert collection["features"][0]["properties"]["kind"] == "truth"

    def test_writes_valid_json_file(self, plane, square_db, tmp_path):
        path = tmp_path / "map.geojson"
        export_geojson(plane, database=square_db, output_path=path)
        parsed = json.loads(path.read_text())
        assert parsed["type"] == "FeatureCollection"
        assert len(parsed["features"]) == 4

    def test_position_roundtrip_accuracy(self, plane, square_db):
        """Exported coordinates project back to the planar original."""
        collection = export_geojson(plane, database=square_db)
        from repro.geo.wgs84 import GeodeticCoordinate

        for feature, record in zip(collection["features"], square_db):
            lon, lat = feature["geometry"]["coordinates"]
            recovered = plane.to_point(GeodeticCoordinate(lat, lon))
            # 7 decimal places of lat/lon ≈ centimeter precision.
            assert recovered.distance_to(record.location) < 0.1


class TestStreamingWriter:
    def test_sniffer_streams_to_capture_file(self, tmp_path):
        import numpy as np

        from repro.geometry.point import Point
        from repro.net80211.capture_file import CaptureReader, CaptureWriter
        from repro.net80211.frames import probe_request
        from repro.net80211.medium import Medium
        from repro.radio.propagation import FreeSpaceModel
        from repro.sniffer.receiver import build_marauder_sniffer

        path = tmp_path / "live.jsonl"
        medium = Medium(FreeSpaceModel())
        sniffer = build_marauder_sniffer(Point(0, 0), medium)
        rng = np.random.default_rng(0)
        with CaptureWriter(path) as writer:
            sniffer.attach_writer(writer)
            for i in range(5):
                frame = probe_request(MacAddress(0x111), channel=6,
                                      timestamp=float(i))
                sniffer.hear(frame, Point(100, 0), rng)
            sniffer.detach_writer()
            # After detaching, captures stop flowing to the file.
            sniffer.hear(probe_request(MacAddress(0x111), channel=6,
                                       timestamp=99.0),
                         Point(100, 0), rng)
        records = list(CaptureReader(path))
        assert len(records) == 5
        assert all(r.frame.channel == 6 for r in records)
