"""Campus-world event-loop tests."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.net80211.ap import AccessPoint
from repro.net80211.mac import MacAddress
from repro.net80211.medium import Medium
from repro.net80211.ssid import Ssid
from repro.net80211.station import PROFILES, MobileStation
from repro.radio.propagation import FreeSpaceModel
from repro.sim.mobility import FixedRoute
from repro.sim.world import CampusWorld
from repro.sniffer.active import ActiveAttacker
from repro.sniffer.receiver import build_marauder_sniffer


def make_ap(index, x, y, channel=6, max_range=120.0):
    return AccessPoint(
        bssid=MacAddress(0x0015_6D00_0000 + index),
        ssid=Ssid(f"ap-{index}"),
        channel=channel,
        position=Point(x, y),
        max_range_m=max_range,
    )


def make_world(aps=None, seed=0):
    aps = aps if aps is not None else [
        make_ap(0, 100.0, 100.0), make_ap(1, 200.0, 100.0, channel=1),
        make_ap(2, 150.0, 200.0, channel=11),
    ]
    medium = Medium(FreeSpaceModel())
    sniffer = build_marauder_sniffer(Point(150.0, 150.0), medium)
    return CampusWorld(aps, medium, sniffer=sniffer, seed=seed)


def make_station(x=150.0, y=150.0, profile="aggressive", seed=1):
    return MobileStation(
        mac=MacAddress.random(np.random.default_rng(seed)),
        position=Point(x, y),
        profile=PROFILES[profile],
    )


class TestEventLoop:
    def test_time_advances(self):
        world = make_world()
        world.run(duration_s=10.0, step_s=1.0)
        assert world.now == pytest.approx(10.0)

    def test_probing_station_observed(self):
        world = make_world()
        station = make_station()
        world.add_station(station)
        world.run(duration_s=60.0)
        store = world.sniffer.store
        assert station.mac in store.probing_mobiles
        gamma = store.gamma(station.mac)
        assert gamma  # probe responses captured from covering APs

    def test_gamma_subset_of_true_gamma(self):
        world = make_world()
        station = make_station()
        world.add_station(station)
        world.run(duration_s=60.0)
        observed = world.sniffer.store.gamma(station.mac)
        true_gamma = world.true_gamma(station.position)
        assert observed <= true_gamma

    def test_out_of_range_ap_not_observed(self):
        far_ap = make_ap(9, 5000.0, 5000.0, max_range=50.0)
        world = make_world(aps=[make_ap(0, 100.0, 100.0), far_ap])
        station = make_station()
        world.add_station(station)
        world.run(duration_s=60.0)
        assert far_ap.bssid not in world.sniffer.store.gamma(station.mac)

    def test_ground_truth_recorded(self):
        world = make_world()
        station = make_station()
        world.add_station(station)
        world.run(duration_s=5.0)
        assert len(world.truths) == 5
        assert world.truth_at(station.mac, 3.0) == station.position

    def test_truth_recording_disabled(self):
        world = make_world()
        world.add_station(make_station())
        world.run(duration_s=5.0, record_truth=False)
        assert world.truths == []

    def test_route_mobility(self):
        world = make_world()
        station = make_station()
        route = FixedRoute([Point(100.0, 100.0), Point(200.0, 100.0)],
                           speed_m_s=10.0)
        world.add_station(station, route)
        world.run(duration_s=5.0)
        assert station.position == Point(150.0, 100.0)

    def test_passive_station_never_probes(self):
        world = make_world()
        station = make_station(profile="passive")
        world.add_station(station)
        world.run(duration_s=120.0)
        assert station.mac not in world.sniffer.store.probing_mobiles

    def test_run_validation(self):
        world = make_world()
        with pytest.raises(ValueError):
            world.run(duration_s=-1.0)
        with pytest.raises(ValueError):
            world.run(duration_s=10.0, step_s=0.0)


class TestActiveAttack:
    def test_deauth_flushes_out_passive_station(self):
        world = make_world()
        station = make_station(profile="passive")
        station.associate(world.access_points[0].bssid)
        world.add_station(station)
        attacker = ActiveAttacker(position=Point(150.0, 150.0))
        world.arm_attacker(attacker, interval_s=10.0)
        world.run(duration_s=30.0)
        assert attacker.frames_sent > 0
        assert station.mac in world.sniffer.store.probing_mobiles

    def test_attack_respects_range(self):
        world = make_world()
        world.attacker_range_m = 10.0  # attacker cannot reach anyone
        station = make_station(profile="passive", x=400.0, y=400.0)
        station.associate(world.access_points[0].bssid)
        world.add_station(station)
        world.arm_attacker(ActiveAttacker(position=Point(0.0, 0.0)),
                           interval_s=10.0)
        world.run(duration_s=30.0)
        assert station.is_associated  # deauth never reached it

    def test_arm_validation(self):
        world = make_world()
        with pytest.raises(ValueError):
            world.arm_attacker(ActiveAttacker(position=Point(0, 0)),
                               interval_s=0.0)


class TestLocalizationLoop:
    def test_end_to_end_mloc(self):
        """Full pipeline: world -> sniffer store -> M-Loc estimate."""
        from repro.knowledge.apdb import ApDatabase, ApRecord
        from repro.localization.mloc import MLoc

        aps = [make_ap(i, 100.0 + 60.0 * (i % 3), 100.0 + 60.0 * (i // 3),
                       channel=(1, 6, 11)[i % 3], max_range=90.0)
               for i in range(9)]
        world = make_world(aps=aps)
        station = make_station(x=160.0, y=160.0)
        world.add_station(station)
        world.run(duration_s=90.0)
        truth_db = ApDatabase([
            ApRecord(bssid=ap.bssid, ssid=ap.ssid, location=ap.position,
                     max_range_m=ap.max_range_m, channel=ap.channel)
            for ap in aps
        ])
        gamma = world.sniffer.store.gamma(station.mac)
        assert len(gamma) >= 3
        estimate = MLoc(truth_db).locate(gamma)
        assert estimate.error_to(station.position) < 60.0
