"""Wardriving / training-tuple tests."""

import pytest

from repro.geometry.point import Point
from repro.knowledge.wardrive import (
    TrainingTuple,
    Wardriver,
    aps_in_training_data,
    tuples_observing,
)
from repro.net80211.mac import MacAddress

AP1 = MacAddress(1)
AP2 = MacAddress(2)
AP3 = MacAddress(3)


class TestTrainingTuple:
    def test_observed_coerced_to_frozenset(self):
        entry = TrainingTuple(Point(0, 0), {AP1, AP2})
        assert isinstance(entry.observed, frozenset)

    def test_hashable(self):
        a = TrainingTuple(Point(0, 0), frozenset({AP1}), 1.0)
        b = TrainingTuple(Point(0, 0), frozenset({AP1}), 1.0)
        assert len({a, b}) == 1


class TestWardriver:
    def test_collect_records_oracle_output(self):
        def oracle(point):
            return {AP1} if point.x < 50 else {AP2}

        route = [Point(0, 0), Point(100, 0)]
        tuples = Wardriver(oracle).collect(route)
        assert tuples[0].observed == frozenset({AP1})
        assert tuples[1].observed == frozenset({AP2})

    def test_timestamps_advance(self):
        tuples = Wardriver(lambda p: set()).collect(
            [Point(0, 0)] * 3, start_time=10.0, seconds_per_stop=5.0)
        assert [t.timestamp for t in tuples] == [10.0, 15.0, 20.0]

    def test_against_ap_database_oracle(self, square_db):
        tuples = Wardriver(square_db.observable_from).collect(
            [Point(50.0, 50.0), Point(0.0, 0.0)])
        assert len(tuples[0].observed) == 4
        assert len(tuples[1].observed) == 1


class TestHelpers:
    def test_aps_in_training_data(self):
        tuples = [
            TrainingTuple(Point(0, 0), frozenset({AP1, AP2})),
            TrainingTuple(Point(1, 0), frozenset({AP2, AP3})),
        ]
        assert aps_in_training_data(tuples) == frozenset({AP1, AP2, AP3})

    def test_tuples_observing(self):
        tuples = [
            TrainingTuple(Point(0, 0), frozenset({AP1, AP2})),
            TrainingTuple(Point(1, 0), frozenset({AP2})),
            TrainingTuple(Point(2, 0), frozenset({AP3})),
        ]
        assert len(tuples_observing(tuples, AP2)) == 2
        assert len(tuples_observing(tuples, AP3)) == 1
        assert tuples_observing(tuples, MacAddress(9)) == []
