"""FaultInjector: determinism, spec parsing, the hook seam."""

import pytest

from repro import obs
from repro.faults import (
    DROPPED,
    CaptureError,
    FaultInjector,
    FaultSpec,
    ReproError,
    SinkError,
    active_injector,
    hook,
    parse_fault_spec,
    use_injector,
)


class TestHookSeam:
    def test_hook_is_identity_without_injector(self):
        assert active_injector() is None
        sentinel = object()
        assert hook("engine.flush") is None
        assert hook("capture.record", sentinel) is sentinel

    def test_use_injector_scopes_and_restores(self):
        injector = FaultInjector([FaultSpec("site.a", mode="raise")])
        with use_injector(injector) as armed:
            assert armed is injector
            assert active_injector() is injector
            with pytest.raises(ReproError):
                hook("site.a")
        assert active_injector() is None

    def test_nested_injectors_restore_outer(self):
        outer = FaultInjector([])
        inner = FaultInjector([])
        with use_injector(outer):
            with use_injector(inner):
                assert active_injector() is inner
            assert active_injector() is outer


class TestFiring:
    def test_raise_mode_raises_named_error(self):
        injector = FaultInjector(
            [FaultSpec("sink.emit", mode="raise", error="SinkError",
                       message="boom")])
        with pytest.raises(SinkError, match="boom"):
            injector.fire("sink.emit")

    def test_times_limits_fires(self):
        injector = FaultInjector(
            [FaultSpec("engine.flush", mode="raise", times=2)])
        for _ in range(2):
            with pytest.raises(ReproError):
                injector.fire("engine.flush")
        injector.fire("engine.flush")  # budget exhausted: no-op
        assert injector.total_fired == 2
        assert injector.fired() == {"engine.flush:raise": 2}

    def test_after_skips_leading_calls(self):
        injector = FaultInjector(
            [FaultSpec("engine.flush", mode="raise", after=3, times=1)])
        for _ in range(3):
            injector.fire("engine.flush")
        with pytest.raises(ReproError):
            injector.fire("engine.flush")

    def test_drop_returns_sentinel(self):
        injector = FaultInjector([FaultSpec("capture.record", mode="drop")])
        assert injector.fire("capture.record", "value") is DROPPED

    def test_corrupt_default_mutations(self):
        injector = FaultInjector(
            [FaultSpec("capture.record", mode="corrupt")])
        assert injector.fire("capture.record", {"a": 1}) == {}
        assert injector.fire("capture.record", "abc") == "cba"
        assert injector.fire("capture.record", object()) is None

    def test_corrupt_custom_mutate(self):
        injector = FaultInjector(
            [FaultSpec("capture.record", mode="corrupt",
                       mutate=lambda value: value * 2)])
        assert injector.fire("capture.record", 21) == 42

    def test_delay_uses_injected_sleep(self):
        sleeps = []
        injector = FaultInjector(
            [FaultSpec("lp.solve", mode="delay", delay_s=0.25, times=2)],
            sleep=sleeps.append)
        injector.fire("lp.solve")
        injector.fire("lp.solve")
        injector.fire("lp.solve")
        assert sleeps == [0.25, 0.25]

    def test_site_glob_matches_families(self):
        injector = FaultInjector(
            [FaultSpec("engine.*", mode="raise", times=10)])
        with pytest.raises(ReproError):
            injector.fire("engine.flush")
        with pytest.raises(ReproError):
            injector.fire("engine.refit")
        assert injector.fire("sink.emit") is None

    def test_key_match_targets_one_device(self):
        injector = FaultInjector(
            [FaultSpec("engine.localize", mode="raise",
                       match="02:00:00:00:00:07")])
        injector.fire("engine.localize", key="02:00:00:00:00:01")
        with pytest.raises(ReproError):
            injector.fire("engine.localize", key="02:00:00:00:00:07")

    def test_probability_stream_is_seeded_and_deterministic(self):
        def pattern(seed):
            injector = FaultInjector(
                [FaultSpec("x", mode="drop", probability=0.5)], seed=seed)
            return [injector.fire("x", 1) is DROPPED for _ in range(64)]

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)
        assert any(pattern(7)) and not all(pattern(7))

    def test_fired_counts_land_in_registry(self):
        registry = obs.MetricsRegistry()
        injector = FaultInjector(
            [FaultSpec("sink.emit", mode="raise", times=1)])
        with obs.use_registry(registry):
            with pytest.raises(ReproError):
                injector.fire("sink.emit")
        assert registry.counter("repro.faults.injected", site="sink.emit",
                                mode="raise").value == 1


class TestParseFaultSpec:
    def test_raise_with_error_and_options(self):
        spec = parse_fault_spec("sink.emit:raise=SinkError,times=3,after=1")
        assert spec.site == "sink.emit"
        assert spec.mode == "raise"
        assert spec.error == "SinkError"
        assert spec.times == 3
        assert spec.after == 1

    def test_delay_and_probability(self):
        spec = parse_fault_spec("lp.solve:delay=0.05,p=0.5")
        assert spec.mode == "delay"
        assert spec.delay_s == pytest.approx(0.05)
        assert spec.probability == pytest.approx(0.5)

    def test_drop_and_match(self):
        spec = parse_fault_spec(
            "capture.record:drop,match=02:00:00:00:00:07")
        assert spec.mode == "drop"
        assert spec.match == "02:00:00:00:00:07"

    @pytest.mark.parametrize("text", [
        "no-colon",
        "site:",
        ":raise",
        "site:explode",
        "site:raise=NoSuchError",
        "site:drop=arg",
        "site:raise,unknown=1",
        "site:raise,times",
    ])
    def test_malformed_specs_raise(self, text):
        with pytest.raises(ValueError):
            parse_fault_spec(text)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("x", mode="raise", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec("x", mode="raise", after=-1)
        with pytest.raises(ValueError):
            FaultSpec("x", mode="raise", times=-1)

    def test_capture_error_type_available(self):
        spec = parse_fault_spec("capture.record:raise=CaptureError")
        with pytest.raises(CaptureError):
            FaultInjector([spec]).fire("capture.record")
