"""ShardedEngine tests: equivalence, recovery, merged reads.

The service's one hard promise: a sharded run produces exactly the
same final per-device localizations as a single-engine run, at any
fleet width, including after killing and restarting shards mid-run.
"""

import functools

import pytest

from repro.engine import StreamingEngine
from repro.localization import MLoc
from repro.net80211.frames import probe_response
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.service import (
    ServiceError,
    ShardConfig,
    ShardedEngine,
)


def station(index):
    return MacAddress(0x020000000000 + index)


def build_stream(square_db, devices=12, rounds=3):
    """Every device hears all four square APs, several times over."""
    frames = []
    t = 0.0
    for _ in range(rounds):
        for d in range(devices):
            for record in square_db:
                t += 0.01
                frame = probe_response(record.bssid, station(d), 6, t,
                                       ssid=record.ssid)
                frames.append(ReceivedFrame(frame, rssi_dbm=-70.0,
                                            snr_db=20.0, rx_channel=6,
                                            rx_timestamp=t))
    return frames


def single_engine_fixes(square_db, frames):
    """The ground truth: one StreamingEngine over the same stream."""
    engine = StreamingEngine(MLoc(square_db), window_s=30.0,
                             batch_size=32)
    for received in frames:
        engine.ingest(received)
    engine.drain()
    return {mobile: (point.timestamp, point.estimate.position)
            for mobile in engine.tracker.devices()
            for point in [engine.tracker.latest(mobile)]}


def fleet(square_db, **kwargs):
    kwargs.setdefault("shards", 3)
    kwargs.setdefault("transport", "thread")
    kwargs.setdefault("config", ShardConfig(window_s=30.0,
                                            batch_size=32))
    kwargs.setdefault("publish_batch", 8)
    return ShardedEngine(functools.partial(MLoc, square_db), **kwargs)


def fleet_fixes(engine):
    return {mobile: (ts, estimate.position)
            for mobile, (ts, estimate) in engine.snapshot().items()}


class TestEquivalence:
    def test_sharded_matches_single_engine(self, square_db):
        frames = build_stream(square_db)
        want = single_engine_fixes(square_db, frames)
        engine = fleet(square_db)
        try:
            engine.ingest_stream(frames)
            engine.drain()
            assert fleet_fixes(engine) == want
        finally:
            engine.stop()

    def test_width_does_not_matter(self, square_db):
        frames = build_stream(square_db, devices=8, rounds=2)
        want = single_engine_fixes(square_db, frames)
        for shards in (1, 2, 5):
            engine = fleet(square_db, shards=shards)
            try:
                engine.run(iter(frames))
                assert fleet_fixes(engine) == want, f"{shards} shards"
            finally:
                engine.stop()

    def test_merged_stats_cover_the_whole_stream(self, square_db):
        frames = build_stream(square_db)
        engine = fleet(square_db)
        try:
            stats = engine.run(iter(frames))
            assert stats.frames_ingested == len(frames)
            assert stats.devices_seen == 12
        finally:
            engine.stop()

    def test_locate_routes_to_the_owning_shard(self, square_db):
        frames = build_stream(square_db)
        engine = fleet(square_db)
        try:
            engine.run(iter(frames))
            fixes = fleet_fixes(engine)
            for d in range(12):
                located = engine.locate(station(d))
                assert located is not None
                timestamp, estimate = located
                assert (timestamp, estimate.position) \
                    == fixes[station(d)]
            assert engine.locate(MacAddress(0x0DEADBEEF000)) is None
            # String form parses too.
            assert engine.locate(str(station(0))) is not None
        finally:
            engine.stop()


class TestRecovery:
    def test_kill_and_restart_mid_run_is_invisible(self, square_db,
                                                   tmp_path):
        frames = build_stream(square_db, devices=12, rounds=4)
        want = single_engine_fixes(square_db, frames)
        engine = fleet(square_db, checkpoint_dir=tmp_path / "ckpt",
                       checkpoint_every=20)
        try:
            half = len(frames) // 2
            engine.ingest_stream(frames[:half])
            engine.kill_shard(1)
            assert not engine._handles[1].alive()
            # The next publish to the dead shard triggers the
            # supervised restart; the run just continues.
            engine.ingest_stream(frames[half:])
            engine.drain()
            assert fleet_fixes(engine) == want
            assert engine._handles[1].restarts == 1
        finally:
            engine.stop()

    def test_recovery_without_checkpoints_replays_retention(
            self, square_db):
        # No checkpoint_dir: retention is never trimmed, so a restart
        # replays the shard's whole history.
        frames = build_stream(square_db, devices=10, rounds=3)
        want = single_engine_fixes(square_db, frames)
        engine = fleet(square_db)
        try:
            half = len(frames) // 2
            engine.ingest_stream(frames[:half])
            engine.kill_shard(0)
            engine.ingest_stream(frames[half:])
            engine.drain()
            assert fleet_fixes(engine) == want
        finally:
            engine.stop()

    def test_post_drain_kill_restores_serving_state(self, square_db,
                                                    tmp_path):
        frames = build_stream(square_db)
        engine = fleet(square_db, checkpoint_dir=tmp_path / "ckpt",
                       checkpoint_every=25)
        try:
            engine.run(iter(frames))
            before = fleet_fixes(engine)
            for index in range(engine.shards):
                engine.kill_shard(index)
            # Any read touching shard state heals the fleet.
            assert fleet_fixes(engine) == before
            health = engine.health()
            assert health["healthy"]
            assert [s["restarts"] for s in health["shards"]] \
                == [1, 1, 1]
        finally:
            engine.stop()

    def test_restart_refuses_a_live_shard(self, square_db):
        engine = fleet(square_db)
        try:
            with pytest.raises(ServiceError):
                engine.restart_shard(0)
        finally:
            engine.stop()

    def test_health_reports_dead_shards_without_healing(self,
                                                        square_db):
        engine = fleet(square_db)
        try:
            engine.kill_shard(2)
            report = engine.health()
            assert not report["healthy"]
            dead = report["shards"][2]
            assert dead["alive"] is False
        finally:
            engine.stop()


class TestCheckpointResume:
    def test_fleet_resumes_from_checkpoint_dir(self, square_db,
                                               tmp_path):
        frames = build_stream(square_db)
        want = single_engine_fixes(square_db, frames)
        ckpt = tmp_path / "fleet"
        first = fleet(square_db, checkpoint_dir=ckpt)
        try:
            first.ingest_stream(frames)
            first.drain()
            first.save_checkpoints()
        finally:
            first.stop()
        second = fleet(square_db, checkpoint_dir=ckpt, resume=True)
        try:
            second.drain()
            assert fleet_fixes(second) == want
        finally:
            second.stop()

    def test_resume_rejects_width_mismatch(self, square_db, tmp_path):
        ckpt = tmp_path / "fleet"
        first = fleet(square_db, shards=3, checkpoint_dir=ckpt)
        first.stop()
        with pytest.raises(ServiceError):
            fleet(square_db, shards=2, checkpoint_dir=ckpt,
                  resume=True)

    def test_resume_requires_a_checkpoint_dir(self, square_db):
        with pytest.raises(ServiceError):
            fleet(square_db, resume=True)

    def test_save_checkpoints_requires_a_dir(self, square_db):
        engine = fleet(square_db)
        try:
            with pytest.raises(ServiceError):
                engine.save_checkpoints()
        finally:
            engine.stop()


class TestLifecycle:
    def test_reads_still_answer_after_stop(self, square_db):
        frames = build_stream(square_db, devices=6, rounds=2)
        engine = fleet(square_db)
        engine.run(iter(frames))
        engine.stop()
        # The drain cache keeps the read side alive post-shutdown.
        assert len(engine.snapshot()) == 6
        assert engine.locate(station(0)) is not None
        assert engine.stats().frames_ingested == len(frames)

    def test_ingest_after_stop_is_an_error(self, square_db):
        frames = build_stream(square_db, devices=2, rounds=1)
        engine = fleet(square_db)
        engine.run(iter(frames))
        engine.stop()
        with pytest.raises(ServiceError):
            engine.ingest(frames[0])

    def test_context_manager_stops_the_fleet(self, square_db):
        frames = build_stream(square_db, devices=4, rounds=1)
        with fleet(square_db) as engine:
            engine.run(iter(frames))
        assert engine._stopped

    def test_rejects_bad_parameters(self, square_db):
        factory = functools.partial(MLoc, square_db)
        with pytest.raises(ValueError):
            ShardedEngine(factory, shards=0)
        with pytest.raises(ValueError):
            ShardedEngine(factory, transport="carrier-pigeon")
        with pytest.raises(ValueError):
            ShardedEngine(factory, publish_batch=0)
        with pytest.raises(ValueError):
            ShardedEngine(factory, checkpoint_every=-1)

    def test_prometheus_scrape_merges_router_and_shards(self,
                                                        square_db):
        frames = build_stream(square_db, devices=6, rounds=2)
        engine = fleet(square_db)
        try:
            engine.ingest_stream(frames)
            engine.flush_publishes()
            text = engine.render_prometheus()
            assert "repro_service_frames_published_total" in text
            assert "repro_engine_frames_total" in text
        finally:
            engine.stop()
