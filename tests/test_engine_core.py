"""Streaming-engine tests: ingest, scheduling, memoization, sinks."""

import pytest

from repro.engine import (
    CallbackSink,
    Evidence,
    GammaState,
    LatestFixSink,
    MicroBatchScheduler,
    StreamingEngine,
    extract_evidence,
)
from repro.localization import MLoc
from repro.net80211.frames import (
    Dot11Frame,
    FrameType,
    beacon,
    probe_request,
    probe_response,
)
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid

from tests.helpers import make_record


def received(frame, timestamp=None):
    return ReceivedFrame(frame, rssi_dbm=-70.0, snr_db=20.0,
                         rx_channel=6,
                         rx_timestamp=(frame.timestamp
                                       if timestamp is None else timestamp))


def station(index):
    return MacAddress(0x020000000000 + index)


def response_stream(square_db, devices, t0=0.0, gap_s=0.5):
    """Each device hears all four square APs in turn."""
    t = t0
    for d in range(devices):
        for record in square_db:
            t += 0.01
            yield received(probe_response(record.bssid, station(d), 6, t,
                                          ssid=record.ssid))
        t += gap_s


class TestExtractEvidence:
    def test_probe_response_is_evidence(self, square_db):
        record = next(iter(square_db))
        frame = probe_response(record.bssid, station(1), 6, 3.0,
                               ssid=record.ssid)
        evidence = extract_evidence(received(frame))
        assert evidence == Evidence(station(1), record.bssid, 3.0)

    def test_data_frame_is_evidence(self, square_db):
        record = next(iter(square_db))
        frame = Dot11Frame(frame_type=FrameType.DATA, source=station(1),
                           destination=record.bssid, channel=6,
                           timestamp=4.0, bssid=record.bssid)
        evidence = extract_evidence(received(frame))
        assert evidence is not None
        assert evidence.mobile == station(1)
        assert evidence.ap == record.bssid

    def test_probe_request_and_beacon_are_not(self, square_db):
        record = next(iter(square_db))
        assert extract_evidence(received(
            probe_request(station(1), 6, 1.0))) is None
        assert extract_evidence(received(
            beacon(record.bssid, 6, 1.0, ssid=record.ssid))) is None


class TestGammaState:
    def test_window_drops_stale_aps(self):
        state = GammaState(window_s=10.0)
        a, b = MacAddress(1), MacAddress(2)
        mobile = station(0)
        state.observe(Evidence(mobile, a, 0.0))
        assert state.gamma(mobile) == {a}
        state.observe(Evidence(mobile, b, 5.0))
        assert state.gamma(mobile) == {a, b}
        # 20 s later only the fresh AP remains in the window.
        state.observe(Evidence(mobile, b, 25.0))
        assert state.gamma(mobile) == {b}

    def test_out_of_order_evidence_keeps_newest(self):
        state = GammaState(window_s=10.0)
        a = MacAddress(1)
        mobile = station(0)
        state.observe(Evidence(mobile, a, 8.0))
        state.observe(Evidence(mobile, a, 3.0))  # late arrival
        assert state.last_seen(mobile) == 8.0
        assert state.gamma(mobile) == {a}

    def test_roundtrip(self):
        state = GammaState(window_s=15.0)
        state.observe(Evidence(station(0), MacAddress(1), 2.0))
        state.observe(Evidence(station(1), MacAddress(2), 3.0))
        clone = GammaState.from_dict(state.to_dict())
        assert clone.window_s == 15.0
        for mobile in state.devices():
            assert clone.gamma(mobile) == state.gamma(mobile)
            assert clone.last_seen(mobile) == state.last_seen(mobile)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            GammaState(window_s=0.0)


class TestScheduler:
    def test_insertion_order_and_dedup(self):
        scheduler = MicroBatchScheduler(batch_size=2)
        assert scheduler.mark_dirty(station(1))
        assert not scheduler.mark_dirty(station(1))
        scheduler.mark_dirty(station(2))
        scheduler.mark_dirty(station(3))
        assert scheduler.ready
        assert scheduler.next_batch() == [station(1), station(2)]
        assert scheduler.pending() == 1
        assert not scheduler.ready

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            MicroBatchScheduler(batch_size=0)


class TestStreamingEngine:
    def test_end_to_end_tracks_and_stats(self, square_db):
        engine = StreamingEngine(MLoc(square_db), batch_size=4)
        stats = engine.run(response_stream(square_db, devices=6))
        assert stats.frames_ingested == 24
        assert stats.evidence_events == 24
        assert stats.devices_seen == 6
        assert stats.estimates_emitted >= 6
        assert stats.batches_flushed >= 1
        assert len(engine.tracker.devices()) == 6
        # All six devices share one Γ: the center estimate is shared.
        positions = {engine.tracker.latest(station(d)).estimate.position
                     for d in range(6)}
        assert len(positions) == 1

    def test_duplicate_gammas_hit_the_cache(self, square_db):
        engine = StreamingEngine(MLoc(square_db), batch_size=64)
        stats = engine.run(response_stream(square_db, devices=10))
        # >= 50% duplicate Γ sets -> nonzero hit rate (acceptance).
        assert stats.cache_hits > 0
        assert stats.cache_hit_rate > 0.5

    def test_cache_disabled_same_estimates(self, square_db):
        cached = StreamingEngine(MLoc(square_db), batch_size=4)
        uncached = StreamingEngine(MLoc(square_db), batch_size=4,
                                   cache_size=0)
        cached.run(response_stream(square_db, devices=5))
        uncached.run(response_stream(square_db, devices=5))
        assert uncached.stats().cache_enabled is False
        assert uncached.stats().cache_hits == 0
        for d in range(5):
            a = cached.tracker.latest(station(d))
            b = uncached.tracker.latest(station(d))
            assert a.timestamp == b.timestamp
            assert a.estimate.position.is_close(b.estimate.position)

    def test_unchanged_gamma_not_relocalized(self, square_db):
        engine = StreamingEngine(MLoc(square_db), batch_size=1)
        frames = list(response_stream(square_db, devices=1))
        engine.ingest_stream(frames)
        engine.flush()
        emitted = engine.stats().estimates_emitted
        # The same evidence again: Γ unchanged, nothing goes dirty.
        for frame in frames:
            engine.ingest(frame)
        engine.flush()
        assert engine.scheduler.pending() == 0
        assert engine.stats().estimates_emitted == emitted

    def test_micro_batch_flushes_during_ingest(self, square_db):
        engine = StreamingEngine(MLoc(square_db), batch_size=2)
        engine.ingest_stream(response_stream(square_db, devices=5))
        # Batches of 2 flushed eagerly: at most one straggler pending.
        assert engine.stats().batches_flushed >= 2
        assert engine.scheduler.pending() <= engine.scheduler.batch_size

    def test_unknown_aps_unlocatable(self, square_db):
        engine = StreamingEngine(MLoc(square_db))
        unknown = make_record(99, 500.0, 500.0, 80.0)
        frame = probe_response(unknown.bssid, station(0), 6, 1.0,
                               ssid=unknown.ssid)
        engine.ingest(received(frame))
        engine.flush()
        stats = engine.stats()
        assert stats.unlocatable == 1
        assert stats.estimates_emitted == 0

    def test_probe_requests_feed_linker(self, square_db):
        engine = StreamingEngine(MLoc(square_db))
        pseudo = MacAddress.parse("02:aa:bb:cc:dd:ee")
        engine.ingest(received(probe_request(pseudo, 6, 1.0,
                                             ssid=Ssid("home-net"))))
        assert engine.stats().probe_requests == 1
        assert engine.linker.fingerprint_of(pseudo) is not None

    def test_out_of_order_burst_keeps_track_monotonic(self, square_db):
        engine = StreamingEngine(MLoc(square_db), batch_size=1,
                                 window_s=5.0)
        records = list(square_db)
        mobile = station(0)
        # Fresh evidence at t=100 ... then a late burst stamped t=50.
        engine.ingest(received(probe_response(records[0].bssid, mobile,
                                              6, 100.0,
                                              ssid=records[0].ssid)))
        engine.flush()
        engine.ingest(received(probe_response(records[1].bssid, mobile,
                                              6, 50.0,
                                              ssid=records[1].ssid)))
        engine.flush()
        track = engine.tracker.track_of(mobile)
        assert len(track) >= 1
        timestamps = [point.timestamp for point in track]
        assert timestamps == sorted(timestamps)

    def test_sinks_receive_estimates(self, square_db):
        seen = []
        fixes = LatestFixSink()
        engine = StreamingEngine(
            MLoc(square_db), batch_size=4,
            sinks=[CallbackSink(lambda m, t, e: seen.append((m, t))),
                   fixes])
        stats = engine.run(response_stream(square_db, devices=3))
        assert len(seen) == stats.estimates_emitted
        assert set(fixes.estimates()) == {station(d) for d in range(3)}

    def test_invalidate_cache(self, square_db):
        engine = StreamingEngine(MLoc(square_db), batch_size=4)
        engine.run(response_stream(square_db, devices=3))
        assert len(engine.cache) > 0
        engine.invalidate_cache()
        assert len(engine.cache) == 0

    def test_stats_format_mentions_pipeline(self, square_db):
        engine = StreamingEngine(MLoc(square_db), batch_size=4)
        stats = engine.run(response_stream(square_db, devices=2))
        text = stats.format()
        assert "PipelineStats" in text
        assert "hit rate" in text
        assert "estimates/s" in text
        assert stats.estimates_per_sec >= 0.0
