"""Edge-case tests for paths not exercised elsewhere."""

import numpy as np
import pytest

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.region import DiscIntersection
from repro.lp.simplex import solve_lp


class TestSimplexLimits:
    def test_iteration_limit_status(self):
        # A legitimate LP with max_iter too small to finish.
        result = solve_lp([1.0, 1.0, 1.0],
                          a_ub=[[-1, -1, 0], [0, -1, -1], [-1, 0, -1]],
                          b_ub=[-1, -1, -1],
                          bounds=[(0, 10)] * 3,
                          max_iter=1)
        assert result.status in ("iteration_limit", "optimal")
        if result.status == "iteration_limit":
            assert result.x is None

    def test_zero_variable_edge(self):
        result = solve_lp([5.0], bounds=[(2.0, 2.0)])
        assert result.is_optimal
        assert result.x[0] == pytest.approx(2.0)


class TestRegionMonteCarloEdges:
    def test_disjoint_region_monte_carlo(self):
        region = DiscIntersection([Circle(Point(0, 0), 1.0),
                                   Circle(Point(10, 0), 1.0)])
        rng = np.random.default_rng(0)
        assert region.monte_carlo_area(rng, samples=100) == 0.0
        assert region.monte_carlo_centroid(rng, samples=100) is None

    def test_zero_radius_disc(self):
        region = DiscIntersection([Circle(Point(3, 4), 0.0)])
        assert region.area == 0.0
        assert region.centroid() == Point(3, 4)

    def test_tiny_sliver_region_numerics(self):
        # Two circles overlapping by a hair: a near-degenerate lens.
        region = DiscIntersection([Circle(Point(0, 0), 1.0),
                                   Circle(Point(1.999999, 0), 1.0)])
        assert not region.is_empty
        assert region.area < 1e-3
        centroid = region.centroid()
        assert centroid.x == pytest.approx(1.0, abs=1e-3)


class TestHopperInWorld:
    def test_hopping_sniffer_misses_most_bursts(self):
        """A single hopping card (the feasibility rig) sees far fewer
        frames than the three fixed cards (the deployed rig)."""
        from repro.net80211.mac import MacAddress
        from repro.net80211.medium import Medium
        from repro.net80211.station import PROFILES, MobileStation
        from repro.radio.channels import CHANNELS_80211BG
        from repro.radio.propagation import FreeSpaceModel
        from repro.sim.world import CampusWorld
        from repro.sniffer.capture import ChannelHopper, Sniffer, SnifferCard
        from repro.sniffer.receiver import (
            build_marauder_chain,
            build_marauder_sniffer,
        )
        from tests.test_sim_world import make_ap

        aps = [make_ap(i, 100.0 + 50.0 * i, 100.0,
                       channel=(1, 6, 11)[i % 3]) for i in range(3)]

        def run(sniffer_factory):
            medium = Medium(FreeSpaceModel())
            sniffer = sniffer_factory(medium)
            world = CampusWorld(aps, medium, sniffer=sniffer, seed=2)
            station = MobileStation(
                mac=MacAddress.random(np.random.default_rng(5)),
                position=Point(150.0, 120.0),
                profile=PROFILES["aggressive"])
            world.add_station(station)
            world.run(duration_s=120.0)
            return sniffer.store.frame_count

        def hopping(medium):
            chain = build_marauder_chain()
            hopper = ChannelHopper(channels=CHANNELS_80211BG, dwell_s=4.0)
            return Sniffer(position=Point(150.0, 150.0),
                           cards=[SnifferCard(chain=chain, channel=hopper)],
                           medium=medium)

        def fixed(medium):
            return build_marauder_sniffer(Point(150.0, 150.0), medium)

        assert run(hopping) < run(fixed)


class TestFrameTypeHelpers:
    def test_is_probe_traffic(self):
        from repro.net80211.frames import FrameType

        assert FrameType.PROBE_REQUEST.is_probe_traffic
        assert FrameType.PROBE_RESPONSE.is_probe_traffic
        assert not FrameType.BEACON.is_probe_traffic
        assert not FrameType.DATA.is_probe_traffic
        assert not FrameType.DEAUTHENTICATION.is_probe_traffic
