"""Engine observability: registry routing, checkpoint totals, factories."""

import json

import pytest

from repro import obs
from repro.engine import (
    EngineStats,
    FanoutSink,
    LatestFixSink,
    PipelineStats,
    StreamingEngine,
    TrackerSink,
    CallbackSink,
    RendererSink,
    make_sink,
    sink_names,
)
from repro.localization import MLoc, make_localizer
from repro.net80211.frames import probe_request, probe_response
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid
from repro.sniffer.tracker import DeviceTracker


def station(index):
    return MacAddress(0x020000000000 + index)


def build_stream(square_db, devices=8, rounds=3):
    frames = []
    t = 0.0
    records = list(square_db)
    for round_index in range(rounds):
        for d in range(devices):
            heard = records if round_index % 2 == 0 else records[:-1]
            frames.append(ReceivedFrame(
                probe_request(station(d), 6, t, ssid=Ssid("home")),
                rssi_dbm=-70.0, snr_db=20.0, rx_channel=6,
                rx_timestamp=t))
            for record in heard:
                t += 0.01
                frame = probe_response(record.bssid, station(d), 6, t,
                                       ssid=record.ssid)
                frames.append(ReceivedFrame(frame, rssi_dbm=-70.0,
                                            snr_db=20.0, rx_channel=6,
                                            rx_timestamp=t))
            t += 2.0
        t += 40.0
    return frames


CORE_COUNTERS = (
    "repro.engine.frames",
    "repro.engine.evidence",
    "repro.engine.probe_requests",
    "repro.engine.batches",
    "repro.engine.estimates",
    "repro.engine.unlocatable",
    "repro.engine.refits",
)


class TestEngineRegistry:
    def test_core_series_present_at_zero_before_any_frame(self, square_db):
        snapshot = StreamingEngine(MLoc(square_db)).metrics_snapshot()
        for name in CORE_COUNTERS:
            assert snapshot["counters"][name] == 0
        assert snapshot["histograms"]["repro.engine.flush.duration"][
            "count"] == 0
        for event in ("hit", "miss", "eviction", "invalidation"):
            assert snapshot["counters"][f"repro.engine.cache.{event}"] == 0
        assert snapshot["gauges"]["repro.engine.cache.entries"] == 0

    def test_run_populates_acceptance_series(self, square_db):
        engine = StreamingEngine(MLoc(square_db), window_s=30.0,
                                 batch_size=3)
        stats = engine.run(iter(build_stream(square_db)))
        snapshot = engine.metrics_snapshot()
        counters = snapshot["counters"]
        assert counters["repro.engine.frames"] == stats.frames_ingested
        assert counters["repro.engine.estimates"] == stats.estimates_emitted
        assert counters["repro.engine.cache.hit"] == stats.cache_hits
        assert counters["repro.engine.cache.miss"] == stats.cache_misses
        flush = snapshot["histograms"]["repro.engine.flush.duration"]
        assert flush["count"] == stats.batches_flushed
        assert flush["sum"] > 0.0
        # Deep layers report into the engine's registry, not the default.
        located = counters["repro.localization.located{algorithm=m-loc}"]
        assert located == stats.cache_misses
        assert snapshot["gauges"]["repro.engine.devices.seen"] == (
            stats.devices_seen)

    def test_engine_registries_are_isolated(self, square_db):
        frames = build_stream(square_db, devices=3, rounds=1)
        first = StreamingEngine(MLoc(square_db), batch_size=3)
        second = StreamingEngine(MLoc(square_db), batch_size=3)
        first.run(iter(frames))
        snapshot = second.metrics_snapshot()
        assert snapshot["counters"]["repro.engine.frames"] == 0
        assert first.registry is not second.registry

    def test_revised_lp_metrics_flow_through_refit(self, square_db):
        localizer = make_localizer("ap-rad:r_max=150,solver=revised",
                                   database=square_db)
        engine = StreamingEngine(localizer, window_s=30.0, batch_size=3,
                                 refit_every=20)
        stats = engine.run(iter(build_stream(square_db)))
        assert stats.refits > 0
        counters = engine.metrics_snapshot()["counters"]
        assert counters["repro.engine.refits"] == stats.refits
        assert "repro.lp.revised.pivots" in counters
        assert "repro.lp.revised.refactorizations" in counters
        assert counters["repro.lp.revised.pivots"] > 0
        # The re-fit wall time landed in the fit stage series.
        assert stats.stage_seconds.get("fit", 0.0) > 0.0

    def test_stats_is_a_view_over_the_registry(self, square_db):
        engine = StreamingEngine(MLoc(square_db), batch_size=3)
        engine.ingest_stream(build_stream(square_db, devices=2, rounds=1))
        engine.flush()
        stats = engine.stats()
        assert isinstance(stats, EngineStats)
        assert stats.frames_ingested == int(
            engine.registry.counter("repro.engine.frames").value)


class TestCheckpointCumulativeTotals:
    def test_resumed_totals_equal_uninterrupted(self, square_db):
        frames = build_stream(square_db)
        cut = 37

        uninterrupted = StreamingEngine(MLoc(square_db), window_s=30.0,
                                        batch_size=3)
        uninterrupted.run(iter(frames))

        first = StreamingEngine(MLoc(square_db), window_s=30.0,
                                batch_size=3)
        first.ingest_stream(frames[:cut])
        blob = json.dumps(first.checkpoint())
        resumed = StreamingEngine.restore(json.loads(blob),
                                          MLoc(square_db))
        resumed.ingest_stream(frames[cut:])
        resumed.flush()

        full = uninterrupted.metrics_snapshot()
        again = resumed.metrics_snapshot()
        for name in CORE_COUNTERS:
            assert again["counters"][name] == full["counters"][name], name
        # Histogram *event counts* carry over too (sums are wall time).
        assert (again["histograms"]["repro.engine.flush.duration"]["count"]
                == full["histograms"]["repro.engine.flush.duration"][
                    "count"])
        assert resumed.stats().to_dict().keys() == (
            uninterrupted.stats().to_dict().keys())

    def test_checkpoint_carries_registry_snapshot(self, square_db):
        engine = StreamingEngine(MLoc(square_db), batch_size=2)
        engine.ingest_stream(build_stream(square_db, devices=3, rounds=1))
        data = engine.checkpoint()
        assert data["engine_checkpoint"] == 3
        assert data["metrics"] == engine.metrics_snapshot()
        # The legacy int block stays for external checkpoint consumers.
        assert data["counters"]["frames_ingested"] == (
            engine.stats().frames_ingested)

    def test_v1_checkpoint_still_restores(self, square_db):
        engine = StreamingEngine(MLoc(square_db), batch_size=2)
        engine.ingest_stream(build_stream(square_db, devices=3, rounds=1))
        engine.flush()
        data = json.loads(json.dumps(engine.checkpoint()))
        del data["metrics"]
        data["engine_checkpoint"] = 1
        restored = StreamingEngine.restore(data, MLoc(square_db))
        stats = restored.stats()
        assert stats.frames_ingested == engine.stats().frames_ingested
        assert stats.estimates_emitted == engine.stats().estimates_emitted
        for stage, seconds in engine.stats().stage_seconds.items():
            assert stats.stage_seconds[stage] == pytest.approx(seconds)


class TestWorkerRegistryMerge:
    def test_parallel_run_merges_worker_metrics_deterministically(
            self, square_db):
        frames = build_stream(square_db)
        sequential = StreamingEngine(MLoc(square_db), window_s=30.0,
                                     batch_size=3)
        sequential.run(iter(frames))
        parallel = StreamingEngine(MLoc(square_db), window_s=30.0,
                                   batch_size=3, workers=2)
        parallel.run(iter(frames))

        seq = sequential.metrics_snapshot()["counters"]
        par = parallel.metrics_snapshot()["counters"]
        # Worker-local registries were folded back in submission order:
        # the located totals match the sequential run exactly.
        key = "repro.localization.located{algorithm=m-loc}"
        assert par[key] == seq[key]
        for name in CORE_COUNTERS:
            assert par[name] == seq[name], name


class TestSinkFactory:
    def test_names(self):
        assert set(sink_names()) == {"tracker", "callback", "latest",
                                     "renderer", "null"}

    def test_builds_by_name_with_context(self):
        tracker = DeviceTracker()
        sink = make_sink("tracker", tracker=tracker)
        assert isinstance(sink, TrackerSink)
        assert sink.tracker is tracker
        assert isinstance(make_sink("latest"), LatestFixSink)

    def test_passthrough_and_fanout(self):
        latest = LatestFixSink()
        assert make_sink(latest) is latest
        fanout = make_sink(["latest", latest])
        assert isinstance(fanout, FanoutSink)
        assert fanout.sinks[1] is latest

    def test_spec_options(self):
        class FakeRenderer:
            def add_estimate(self, *args, **kwargs):
                pass

        sink = make_sink("renderer:label_devices=false",
                         renderer=FakeRenderer())
        assert isinstance(sink, RendererSink)
        assert sink.label_devices is False

    def test_unknown_and_bad_specs_raise(self):
        with pytest.raises(ValueError, match="unknown sink"):
            make_sink("kafka")
        with pytest.raises(ValueError, match="bad options"):
            make_sink("callback")  # no callback supplied

    def test_fanout_accepts_any_iterable(self):
        fanout = FanoutSink(sink for sink in (LatestFixSink(),
                                              LatestFixSink()))
        assert len(fanout.sinks) == 2


class TestDeprecations:
    def test_pipeline_stats_alias_warns(self):
        with pytest.warns(DeprecationWarning, match="PipelineStats"):
            stats = PipelineStats()
        assert isinstance(stats, EngineStats)
        assert "PipelineStats:" in stats.format()

    def test_engine_stats_does_not_warn(self, recwarn):
        EngineStats()
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_dict_config_sinks_warn_but_work(self):
        tracker = DeviceTracker()
        with pytest.warns(DeprecationWarning, match="TrackerSink"):
            sink = TrackerSink({"tracker": tracker})
        assert sink.tracker is tracker

        def record(mobile, timestamp, estimate):
            pass

        with pytest.warns(DeprecationWarning, match="CallbackSink"):
            sink = CallbackSink({"callback": record})
        assert sink.callback is record

        class FakeRenderer:
            pass

        renderer = FakeRenderer()
        with pytest.warns(DeprecationWarning, match="RendererSink"):
            sink = RendererSink({"renderer": renderer,
                                 "label_devices": False})
        assert sink.renderer is renderer
        assert sink.label_devices is False
