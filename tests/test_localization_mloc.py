"""M-Loc tests: the paper's pseudocode, fallbacks, and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.knowledge.apdb import ApDatabase
from repro.localization.mloc import MLoc

from tests.helpers import make_record


class TestPaperAlgorithm:
    def test_locates_center_of_square(self, square_db):
        estimate = MLoc(square_db).locate(square_db.bssids)
        # Perfect symmetric knowledge: the estimate is the exact center.
        assert estimate.position.x == pytest.approx(50.0, abs=1e-6)
        assert estimate.position.y == pytest.approx(50.0, abs=1e-6)
        assert estimate.used_ap_count == 4
        assert estimate.algorithm == "m-loc"

    def test_region_covers_truth_with_exact_knowledge(self, square_db):
        truth = Point(60.0, 45.0)
        gamma = square_db.observable_from(truth)
        estimate = MLoc(square_db).locate(gamma)
        assert estimate.covers(truth)
        assert estimate.error_to(truth) < 80.0

    def test_two_ap_lens(self):
        db = ApDatabase([make_record(0, 0.0, 0.0, 60.0),
                         make_record(1, 80.0, 0.0, 60.0)])
        estimate = MLoc(db).locate(db.bssids)
        # Lens between the two circles: centered on the axis midpoint.
        assert estimate.position.x == pytest.approx(40.0, abs=1e-6)
        assert estimate.position.y == pytest.approx(0.0, abs=1e-6)

    def test_single_ap_returns_ap_location(self):
        db = ApDatabase([make_record(0, 30.0, 40.0, 50.0)])
        estimate = MLoc(db).locate(db.bssids)
        # Δ is empty (no pairs); documented fallback: region centroid,
        # which for one disc is the AP location (the nearest-AP case).
        assert estimate.position == Point(30.0, 40.0)
        assert estimate.area_m2 == pytest.approx(math.pi * 50.0 ** 2)

    def test_unknown_aps_skipped(self, square_db):
        from repro.net80211.mac import MacAddress

        gamma = set(square_db.bssids) | {MacAddress(0xDEAD)}
        estimate = MLoc(square_db).locate(gamma)
        assert estimate.used_ap_count == 4

    def test_no_known_aps_returns_none(self, square_db):
        from repro.net80211.mac import MacAddress

        assert MLoc(square_db).locate({MacAddress(0xDEAD)}) is None

    def test_records_without_range_use_fallback(self):
        db = ApDatabase([make_record(0, 0.0, 0.0),
                         make_record(1, 80.0, 0.0)])
        estimate = MLoc(db, fallback_range_m=60.0).locate(db.bssids)
        assert estimate.used_ap_count == 2
        assert estimate.position.x == pytest.approx(40.0, abs=1e-6)

    def test_records_without_range_and_fallback_skipped(self):
        db = ApDatabase([make_record(0, 0.0, 0.0, 50.0),
                         make_record(1, 30.0, 0.0)])
        estimate = MLoc(db).locate(db.bssids)
        assert estimate.used_ap_count == 1

    def test_invalid_mode(self, square_db):
        with pytest.raises(ValueError):
            MLoc(square_db, mode="magic")


class TestModes:
    def test_vertex_vs_region_close_for_symmetric_case(self, square_db):
        gamma = square_db.bssids
        vertex = MLoc(square_db, mode="vertex").locate(gamma)
        region = MLoc(square_db, mode="region").locate(gamma)
        assert vertex.position.distance_to(region.position) < 1.0

    def test_region_mode_is_exact_centroid(self):
        db = ApDatabase([make_record(0, 0.0, 0.0, 60.0),
                         make_record(1, 80.0, 0.0, 60.0)])
        estimate = MLoc(db, mode="region").locate(db.bssids)
        rng = np.random.default_rng(0)
        mc = estimate.region.monte_carlo_centroid(rng, samples=40000)
        assert estimate.position.distance_to(mc) < 1.0


class TestEmptyIntersectionFallbacks:
    def test_inflation_recovers_position(self):
        # Slightly-too-small radii: discs don't quite meet.
        db = ApDatabase([make_record(0, 0.0, 0.0, 49.0),
                         make_record(1, 100.0, 0.0, 49.0)])
        estimate = MLoc(db).locate(db.bssids)
        assert estimate.region_empty
        assert estimate.inflation_factor > 1.0
        # Inflated estimate lands near the midpoint.
        assert estimate.position.x == pytest.approx(50.0, abs=2.0)

    def test_inflation_disabled_falls_back_to_ap_mean(self):
        db = ApDatabase([make_record(0, 0.0, 0.0, 40.0),
                         make_record(1, 100.0, 0.0, 40.0)])
        estimate = MLoc(db, inflate_to_feasible=False).locate(db.bssids)
        assert estimate.region_empty
        assert estimate.inflation_factor == 1.0
        assert estimate.position == Point(50.0, 0.0)

    def test_empty_region_never_covers(self):
        db = ApDatabase([make_record(0, 0.0, 0.0, 40.0),
                         make_record(1, 100.0, 0.0, 40.0)])
        estimate = MLoc(db).locate(db.bssids)
        assert not estimate.covers(Point(50.0, 0.0))
        assert estimate.area_m2 == 0.0


class TestInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_exact_knowledge_always_covers(self, data):
        """With exact locations and radii, the true position is always
        inside the intersected region (the paper's key soundness
        property)."""
        count = data.draw(st.integers(min_value=1, max_value=6))
        coord = st.floats(min_value=0.0, max_value=200.0,
                          allow_nan=False, allow_infinity=False)
        truth = Point(data.draw(coord), data.draw(coord))
        records = []
        for i in range(count):
            ap = Point(data.draw(coord), data.draw(coord))
            distance = ap.distance_to(truth)
            # Radius at least the distance: the AP really covers truth.
            radius = distance + data.draw(
                st.floats(min_value=1.0, max_value=100.0))
            records.append(make_record(i, ap.x, ap.y, radius))
        db = ApDatabase(records)
        estimate = MLoc(db).locate(db.bssids)
        assert estimate is not None
        assert not estimate.region_empty
        assert estimate.covers(truth)
        # The estimate itself lies inside the region too.
        assert estimate.region.contains(estimate.position, tol=1e-3)
