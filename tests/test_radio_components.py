"""RF-component model tests."""

import math

import pytest

from repro.radio.components import (
    Antenna,
    Connector,
    LowNoiseAmplifier,
    Splitter,
    WirelessNic,
    catalog,
)


class TestAntenna:
    def test_gain_passthrough(self):
        antenna = Antenna("test", gain_dbi=15.0)
        assert antenna.gain_db == 15.0
        assert antenna.noise_factor == 1.0  # passive


class TestConnector:
    def test_loss_is_negative_gain(self):
        assert Connector("c", loss_db=0.5).gain_db == -0.5

    def test_negative_loss_rejected(self):
        with pytest.raises(ValueError):
            Connector("c", loss_db=-1.0)


class TestLna:
    def test_paper_lna(self):
        lna = LowNoiseAmplifier("RF-Lambda", gain_db=45.0,
                                noise_figure_db=1.5)
        assert lna.gain_db == 45.0
        assert lna.noise_factor == pytest.approx(10 ** 0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            LowNoiseAmplifier("bad", gain_db=-1.0, noise_figure_db=1.0)
        with pytest.raises(ValueError):
            LowNoiseAmplifier("bad", gain_db=10.0, noise_figure_db=-1.0)


class TestSplitter:
    def test_four_way_split_loss(self):
        splitter = Splitter("s", ways=4)
        # 10 log10(4) ≈ 6.02 dB.
        assert splitter.split_loss_db == pytest.approx(6.0206, abs=1e-3)

    def test_gain_includes_excess(self):
        splitter = Splitter("s", ways=4, excess_loss_db=0.5)
        assert splitter.gain_db == pytest.approx(-6.5206, abs=1e-3)

    def test_one_way_is_lossless(self):
        assert Splitter("s", ways=1).split_loss_db == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Splitter("s", ways=0)
        with pytest.raises(ValueError):
            Splitter("s", ways=2, excess_loss_db=-0.1)


class TestWirelessNic:
    def test_noise_factor(self):
        nic = WirelessNic("n", noise_figure_db=4.0)
        assert nic.noise_factor == pytest.approx(10 ** 0.4)
        assert nic.gain_db == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WirelessNic("n", noise_figure_db=-1.0)
        with pytest.raises(ValueError):
            WirelessNic("n", noise_figure_db=4.0, bandwidth_hz=0.0)


class TestCatalog:
    def test_paper_hardware_present(self):
        parts = catalog()
        for key in ("HG2415U", "RF-Lambda-LNA", "4-way-splitter",
                    "SRC", "DLink"):
            assert key in parts

    def test_paper_numbers(self):
        parts = catalog()
        assert parts["HG2415U"].gain_dbi == 15.0
        assert parts["RF-Lambda-LNA"].gain_db == 45.0
        assert parts["RF-Lambda-LNA"].noise_figure_db == 1.5
        assert parts["4-way-splitter"].ways == 4
        # "a common WNIC has a noise figure around 4.0 ~ 6.0 dB"
        assert 4.0 <= parts["SRC"].noise_figure_db <= 6.0
        assert 4.0 <= parts["DLink"].noise_figure_db <= 6.0
        # SRC: 300 mW ≈ 24.8 dBm.
        assert parts["SRC"].tx_power_dbm == pytest.approx(24.8, abs=0.1)
