"""Error-statistics helper tests."""

import pytest

from repro.analysis.errors import (
    ErrorStats,
    cumulative_fraction_below,
    histogram,
)


class TestErrorStats:
    def test_known_sample(self):
        stats = ErrorStats.from_values([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.count == 5
        assert stats.mean == pytest.approx(3.0)
        assert stats.median == pytest.approx(3.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 5.0

    def test_single_value(self):
        stats = ErrorStats.from_values([7.0])
        assert stats.std == 0.0
        assert stats.mean == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ErrorStats.from_values([])

    def test_p90(self):
        stats = ErrorStats.from_values(list(range(101)))
        assert stats.p90 == pytest.approx(90.0)

    def test_format_row(self):
        stats = ErrorStats.from_values([1.0, 2.0])
        row = stats.format_row("m-loc")
        assert "m-loc" in row
        assert "mean=" in row


class TestHistogram:
    def test_basic_binning(self):
        bins = histogram([1.0, 2.0, 2.5, 7.0], [0.0, 2.0, 4.0, 6.0])
        assert bins[0] == (0.0, 2.0, 1)
        assert bins[1] == (2.0, 4.0, 2)
        # 7.0 lands in the final (overflow) bin.
        assert bins[2] == (4.0, 6.0, 1)

    def test_below_range_dropped(self):
        bins = histogram([-1.0, 1.0], [0.0, 2.0])
        assert bins[0][2] == 1

    def test_boundary_goes_to_upper_bin(self):
        bins = histogram([2.0], [0.0, 2.0, 4.0])
        assert bins[0][2] == 0
        assert bins[1][2] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram([1.0], [0.0])
        with pytest.raises(ValueError):
            histogram([1.0], [0.0, 0.0, 1.0])


class TestCdf:
    def test_fraction_below(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert cumulative_fraction_below(values, 2.5) == 0.5
        assert cumulative_fraction_below(values, 100.0) == 1.0
        assert cumulative_fraction_below(values, 0.0) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            cumulative_fraction_below([], 1.0)
