"""Arc-boundary invariants of DiscIntersection (golden + property)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.region import DiscIntersection

coord = st.floats(min_value=-5.0, max_value=5.0,
                  allow_nan=False, allow_infinity=False)
radius = st.floats(min_value=1.0, max_value=6.0,
                   allow_nan=False, allow_infinity=False)


def disc():
    return st.builds(lambda x, y, r: Circle(Point(x, y), r),
                     coord, coord, radius)


class TestGoldenReuleaux:
    """Three unit circles centered on an equilateral triangle of side 1
    form a Reuleaux triangle: area = (pi - sqrt(3)) / 2."""

    def region(self):
        h = math.sqrt(3) / 2.0
        return DiscIntersection([
            Circle(Point(0.0, 0.0), 1.0),
            Circle(Point(1.0, 0.0), 1.0),
            Circle(Point(0.5, h), 1.0),
        ])

    def test_reuleaux_area(self):
        expected = (math.pi - math.sqrt(3)) / 2.0
        assert self.region().area == pytest.approx(expected, rel=1e-9)

    def test_reuleaux_vertices_are_the_centers(self):
        # The three corners of the Reuleaux triangle are exactly the
        # circle centers (each pair of unit circles at distance 1
        # intersects at the third center and one outside point).
        vertices = self.region().vertices
        assert len(vertices) == 3
        centers = {(0.0, 0.0), (1.0, 0.0)}
        found = {(round(v.x, 9), round(v.y, 9)) for v in vertices}
        assert (0.0, 0.0) in found
        assert (1.0, 0.0) in found

    def test_reuleaux_centroid_is_triangle_center(self):
        centroid = self.region().centroid()
        assert centroid.x == pytest.approx(0.5, abs=1e-9)
        assert centroid.y == pytest.approx(math.sqrt(3) / 6.0, abs=1e-9)

    def test_vertex_centroid_matches_region_centroid_by_symmetry(self):
        region = self.region()
        assert region.vertex_centroid().is_close(region.centroid(),
                                                 tol=1e-9)


class TestBoundaryClosure:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(disc(), min_size=2, max_size=5))
    def test_arcs_form_a_closed_boundary(self, discs):
        """Each arc ends where the next begins (cyclically)."""
        region = DiscIntersection(discs)
        arcs = region._arcs or []
        if len(arcs) < 2:
            return
        scale = max(d.radius for d in discs)
        for (c1, start1, sweep1), (c2, start2, _) in zip(
                arcs, arcs[1:] + arcs[:1]):
            end = c1.point_at(start1 + sweep1)
            start = c2.point_at(start2)
            assert end.distance_to(start) < 1e-4 * scale

    @settings(max_examples=40, deadline=None)
    @given(st.lists(disc(), min_size=2, max_size=5))
    def test_arc_midpoints_inside_region(self, discs):
        region = DiscIntersection(discs)
        for circle, start, sweep in region._arcs or []:
            midpoint = circle.point_at(start + sweep / 2.0)
            assert region.contains(midpoint, tol=1e-5 * circle.radius)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(disc(), min_size=2, max_size=5))
    def test_arc_count_equals_vertex_count(self, discs):
        # A closed arc-polygon has exactly one boundary arc per vertex.
        region = DiscIntersection(discs)
        vertices = region.vertices
        arcs = region._arcs or []
        if len(vertices) >= 2 and arcs:
            assert len(arcs) == len(vertices)
