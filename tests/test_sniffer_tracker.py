"""Device-tracker and pseudonym-linker tests."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.localization.base import LocalizationEstimate
from repro.net80211.frames import probe_request
from repro.net80211.mac import MacAddress
from repro.net80211.ssid import Ssid
from repro.sniffer.tracker import DeviceTracker, PseudonymLinker

STA = MacAddress.parse("00:1b:63:11:22:33")


def estimate_at(x, y):
    return LocalizationEstimate(position=Point(x, y), algorithm="m-loc")


class TestDeviceTracker:
    def test_record_and_query(self):
        tracker = DeviceTracker()
        tracker.record(STA, 1.0, estimate_at(0, 0))
        tracker.record(STA, 2.0, estimate_at(1, 1))
        track = tracker.track_of(STA)
        assert len(track) == 2
        assert tracker.latest(STA).timestamp == 2.0
        assert tracker.path_of(STA) == [Point(0, 0), Point(1, 1)]

    def test_time_monotonicity_enforced(self):
        tracker = DeviceTracker()
        tracker.record(STA, 5.0, estimate_at(0, 0))
        with pytest.raises(ValueError):
            tracker.record(STA, 4.0, estimate_at(1, 1))

    def test_unknown_device(self):
        tracker = DeviceTracker()
        assert tracker.track_of(STA) == []
        assert tracker.latest(STA) is None

    def test_devices_and_totals(self):
        tracker = DeviceTracker()
        other = MacAddress.parse("00:1b:63:44:55:66")
        tracker.record(STA, 1.0, estimate_at(0, 0))
        tracker.record(other, 1.0, estimate_at(2, 2))
        tracker.record(other, 2.0, estimate_at(3, 3))
        assert tracker.devices() == sorted([STA, other])
        assert tracker.total_estimates() == 3


class TestPseudonymLinker:
    def make_probe(self, mac, ssid_name=None, t=0.0):
        ssid = Ssid(ssid_name) if ssid_name else Ssid("")
        return probe_request(mac, channel=6, timestamp=t, ssid=ssid)

    def test_links_pseudonyms_sharing_pnl(self):
        rng = np.random.default_rng(1)
        linker = PseudonymLinker()
        mac_a = MacAddress.random_pseudonym(rng)
        mac_b = MacAddress.random_pseudonym(rng)
        for mac in (mac_a, mac_b):
            linker.ingest(self.make_probe(mac, "home-wifi"))
            linker.ingest(self.make_probe(mac, "office-net"))
        groups = linker.linked_groups()
        assert [sorted(g) for g in groups] == [sorted([mac_a, mac_b])]

    def test_different_pnls_not_linked(self):
        rng = np.random.default_rng(2)
        linker = PseudonymLinker()
        mac_a = MacAddress.random_pseudonym(rng)
        mac_b = MacAddress.random_pseudonym(rng)
        linker.ingest(self.make_probe(mac_a, "home-wifi"))
        linker.ingest(self.make_probe(mac_b, "coffee-shop"))
        assert len(linker.linked_groups()) == 2

    def test_global_macs_not_grouped(self):
        linker = PseudonymLinker()
        linker.ingest(self.make_probe(STA, "home-wifi"))
        assert linker.linked_groups() == []
        kind, identity = linker.logical_identity(STA)
        assert kind == "mac"
        assert identity == str(STA)

    def test_pseudonym_identity_is_fingerprint(self):
        rng = np.random.default_rng(3)
        linker = PseudonymLinker()
        mac = MacAddress.random_pseudonym(rng)
        linker.ingest(self.make_probe(mac, "home-wifi"))
        kind, identity = linker.logical_identity(mac)
        assert kind == "fingerprint"
        assert identity == linker.fingerprint_of(mac)

    def test_silent_pseudonym_falls_back_to_mac(self):
        rng = np.random.default_rng(4)
        linker = PseudonymLinker()
        mac = MacAddress.random_pseudonym(rng)
        linker.ingest(self.make_probe(mac))  # wildcard only: no leak
        assert linker.fingerprint_of(mac) is None
        kind, _ = linker.logical_identity(mac)
        assert kind == "mac"

    def test_non_probe_frames_ignored(self):
        from repro.net80211.frames import beacon

        linker = PseudonymLinker()
        linker.ingest(beacon(STA, 6, 0.0, Ssid("x")))
        assert linker.fingerprint_of(STA) is None

    def test_station_pseudonym_rotation_is_linked(self):
        """End-to-end: a station rotating MACs stays trackable."""
        from repro.net80211.station import PROFILES, MobileStation

        rng = np.random.default_rng(5)
        linker = PseudonymLinker()
        station = MobileStation(
            mac=MacAddress.random_pseudonym(rng),
            position=Point(0, 0),
            profile=PROFILES["aggressive"],
            preferred_networks=[Ssid("home"), Ssid("work")],
            scan_channels=(6,),
        )
        for frame in station.tick(0.0):
            linker.ingest(frame)
        rotated = station.with_new_pseudonym(rng)
        rotated._next_scan_at = 0.0
        for frame in rotated.tick(100.0):
            linker.ingest(frame)
        groups = linker.linked_groups()
        assert any({station.mac, rotated.mac} <= set(group)
                   for group in groups)
