"""Tier-1 smoke for the bus transport bench (a tiny run).

Guards the acceptance property — the socket transport and the TCP
ingest gateway produce output identical to the in-process paths, at a
measured throughput cost — without the full committed-bench sizes.
Runs the bench the way an operator would, as a standalone process.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH = REPO_ROOT / "benchmarks" / "bench_service_bus.py"


def test_bench_service_bus_smoke(tmp_path):
    out_path = tmp_path / "service_bus.json"
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    result = subprocess.run(
        [sys.executable, str(BENCH), "--messages", "2000",
         "--frames", "1500", "--repeats", "1",
         "--json", str(out_path)],
        capture_output=True, text=True, env=env, timeout=300)
    assert result.returncode == 0, result.stderr
    assert "raw socket" in result.stdout
    assert "gateway" in result.stdout

    report = json.loads(out_path.read_text())
    assert report["bench"] == "service_bus"
    assert report["config"]["cpu_count"] == os.cpu_count()
    assert report["config"]["messages"] == 2000

    for transport in ("thread", "process", "socket"):
        assert report["raw"][transport]["messages_per_sec"] > 0.0

    # The acceptance property, at smoke scale: the TCP hops cost
    # throughput but change nothing in the output.
    assert report["fleet"]["outputs_identical"] is True
    assert report["gateway"]["outputs_identical"] is True
    assert report["gateway"]["frames"] == 1500
    assert report["gateway"]["gateway"]["reconnects"] == 0
