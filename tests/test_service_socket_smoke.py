"""Socket service smoke: real processes, TCP shards, network ingest.

The CI canary for the socket stack: spawn `marauder serve` with the
TCP transport and an ingest gateway (no local capture at all), stream
the capture in from a separate `marauder ingest` process, sever bus
connections while the stream is in flight, kill and restart a shard —
and require the served snapshot to equal, float for float, what one
in-process engine computes from the same capture.
"""

import json
import os
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.engine import StreamingEngine
from repro.geo.enu import LocalTangentPlane
from repro.geo.wgs84 import GeodeticCoordinate
from repro.knowledge.wigle import export_wigle_csv, import_wigle_csv
from repro.localization import make_localizer
from repro.capture import make_capture_writer
from repro.service import estimate_to_dict
from repro.sim import build_attack_scenario
from repro.sniffer.replay import iter_capture

ORIGIN = GeodeticCoordinate(42.6555, -71.3262)
REPO_ROOT = Path(__file__).resolve().parent.parent


def get(base, path, timeout=10):
    try:
        with urllib.request.urlopen(base + path,
                                    timeout=timeout) as reply:
            return reply.status, reply.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


def post(base, path, timeout=10):
    request = urllib.request.Request(base + path, method="POST",
                                     data=b"")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, reply.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


@pytest.fixture(scope="module")
def capture(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("socket_smoke")
    scenario = build_attack_scenario(seed=13, ap_count=30,
                                     area_m=300.0, bystander_count=3)
    scenario.world.sniffer.keep_frames = True
    scenario.world.run(duration_s=60.0)
    capture_path = tmp_path / "capture.jsonl"
    with make_capture_writer(capture_path, format="jsonl") as writer:
        for received in scenario.world.sniffer.captured:
            writer.write(received)
    wigle_path = tmp_path / "wigle.csv"
    export_wigle_csv(scenario.truth_db, wigle_path,
                     LocalTangentPlane(ORIGIN))
    return capture_path, wigle_path, tmp_path


def expected_snapshot(capture_path, wigle_path):
    """What one in-process engine serves for the same capture.

    Matches the serve defaults exactly: m-loc over the WiGLE import
    with the default fallback range, 30 s window, batch of 32.  The
    snapshot JSON is deterministic (device-sorted, full floats), so
    the comparison is exact, not approximate.
    """
    plane = LocalTangentPlane(ORIGIN)
    database = import_wigle_csv(wigle_path, plane)
    engine = StreamingEngine(
        make_localizer("m-loc", database=database,
                       fallback_range_m=150.0),
        window_s=30.0, batch_size=32)
    engine.run(iter_capture(capture_path))
    fixes = {}
    for mobile in engine.tracker.devices():
        point = engine.tracker.latest(mobile)
        fixes[str(mobile)] = estimate_to_dict(point.timestamp,
                                              point.estimate)
    return {"devices": len(fixes), "fixes": fixes}


def run_ingest(capture_path, address, tmp_path, client_id,
               batch_records=4):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    log_path = tmp_path / f"ingest-{client_id}.log"
    with open(log_path, "w", encoding="utf-8") as log:
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "ingest",
             str(capture_path), "--connect", address,
             "--batch-records", str(batch_records), "--window", "4",
             "--client-id", client_id],
            env=env, stdout=log, stderr=subprocess.STDOUT)
    return process, log_path


def test_socket_serve_ingest_kill_recover(capture):
    capture_path, wigle_path, tmp_path = capture
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    log_path = tmp_path / "serve.log"
    with open(log_path, "w", encoding="utf-8") as log:
        serve = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--wigle", str(wigle_path),
             "--shards", "2", "--transport", "socket",
             "--port", "0", "--ingest-port", "0", "--chaos",
             "--checkpoint-dir", str(tmp_path / "ckpt"),
             "--checkpoint-every", "10",
             "--serve-seconds", "180"],
            env=env, stdout=log, stderr=subprocess.STDOUT)
    try:
        # Network-only ingest: serve must come up with no capture and
        # print both the HTTP and the gateway addresses.
        base = gateway = None
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            text = log_path.read_text(encoding="utf-8")
            http_match = re.search(r"on (http://[\d.]+:\d+)", text)
            gate_match = re.search(
                r"Ingest gateway on ([\d.]+:\d+)", text)
            if http_match and gate_match:
                base = http_match.group(1)
                gateway = gate_match.group(1)
                break
            assert serve.poll() is None, f"serve died:\n{text}"
            time.sleep(0.25)
        assert base is not None, "serve never came up"
        assert gateway is not None, "gateway address never printed"

        # Before any frames: healthy fleet, empty snapshot.
        assert json.loads(get(base, "/health")[1])["healthy"]
        assert json.loads(get(base, "/snapshot")[1])["devices"] == 0

        # Stream the capture from a separate process, and sever the
        # shard TCP connections while the stream is in flight — the
        # reconnect machinery must make the cuts invisible.
        ingest, ingest_log = run_ingest(capture_path, gateway,
                                        tmp_path, "smoke-collector")
        cuts = 0
        while ingest.poll() is None:
            for shard in (0, 1):
                status, body = post(
                    base, f"/chaos/kill-connection?shard={shard}")
                assert status == 200
                cuts += json.loads(body)["killed"]
            time.sleep(0.05)
        assert ingest.wait(timeout=120) == 0, \
            ingest_log.read_text(encoding="utf-8")
        assert "Ingest complete:" in ingest_log.read_text(
            encoding="utf-8")
        assert cuts >= 1, "no live bus connection was ever severed"

        # The served state equals the single-engine ground truth
        # exactly, despite the remote hop and the severed connections.
        want = expected_snapshot(capture_path, wigle_path)
        snapshot = json.loads(get(base, "/snapshot")[1])
        assert snapshot == want

        # Kill a whole shard worker; the next read restarts it from
        # checkpoint + retention replay with identical serving state.
        status, _ = post(base, "/chaos/kill?shard=1")
        assert status == 200
        health = json.loads(get(base, "/health")[1])
        assert not health["healthy"]
        assert json.loads(get(base, "/snapshot")[1]) == want
        health = json.loads(get(base, "/health")[1])
        assert health["healthy"]
        assert health["shards"][1]["restarts"] == 1

        # Re-running the same collector id resumes past everything
        # already acked: a no-op, not a double ingest.
        rerun, rerun_log = run_ingest(capture_path, gateway, tmp_path,
                                      "smoke-collector",
                                      batch_records=4)
        assert rerun.wait(timeout=120) == 0, \
            rerun_log.read_text(encoding="utf-8")
        assert json.loads(get(base, "/snapshot")[1]) == want

        # Socket transport counters made it to the scrape.
        metrics = get(base, "/metrics")[1]
        assert "repro_socket_connections_total" in metrics
        assert "repro_ingest_frames_total" in metrics

        serve.terminate()
        assert serve.wait(timeout=60) == 0
        text = log_path.read_text(encoding="utf-8")
        assert "stopped cleanly" in text
    finally:
        if serve.poll() is None:
            serve.kill()
            serve.wait(timeout=30)
