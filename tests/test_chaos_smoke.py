"""Chaos smoke: seeded fault runs must match their fault-free twins.

This is the CI canary for the fault-tolerance stack: inject transient
faults at every supervised site, and require the exact same estimates
as an unfaulted run — the retries must be invisible in the output.
"""

from repro.engine import StreamingEngine
from repro.engine.sinks import LatestFixSink
from repro.faults import (
    FaultInjector,
    RetryPolicy,
    parse_fault_spec,
    use_injector,
)
from repro.localization import MLoc, make_localizer

from tests.test_engine_checkpoint import build_stream, final_tracks


def noop_sleep(_seconds):
    pass


def latest_fixes(sink):
    return {mobile: (timestamp, (estimate.position.x, estimate.position.y))
            for mobile, (timestamp, estimate) in sink.fixes.items()}


def run_mloc(square_db, frames, injector=None):
    sink = LatestFixSink()
    # Six attempts: enough headroom to absorb two engine.flush faults
    # followed by two worker.chunk faults inside one retry budget.
    engine = StreamingEngine(
        MLoc(square_db), window_s=30.0, batch_size=3, sinks=[sink],
        retry=RetryPolicy(max_attempts=6, base_delay=0.0,
                          sleep=noop_sleep))
    if injector is None:
        engine.run(iter(frames))
    else:
        with use_injector(injector):
            engine.run(iter(frames))
    return engine, sink


def test_faulted_run_matches_fault_free_output(square_db):
    frames = build_stream(square_db)
    baseline, baseline_sink = run_mloc(square_db, frames)

    injector = FaultInjector(
        [parse_fault_spec(spec) for spec in [
            "sink.emit:raise=SinkError,times=2",
            "engine.flush:raise,times=2",
            "worker.chunk:raise=WorkerError,times=2",
        ]],
        seed=5)
    chaotic, chaotic_sink = run_mloc(square_db, frames, injector)

    assert injector.total_fired == 6
    stats = chaotic.stats()
    assert stats.retries > 0
    assert stats.quarantined == 0
    assert stats.sink_failures == 0
    assert final_tracks(chaotic) == final_tracks(baseline)
    assert latest_fixes(chaotic_sink) == latest_fixes(baseline_sink)


def run_aprad(square_db, frames, injector=None):
    localizer = make_localizer("ap-rad:r_max=150,solver=revised",
                               database=square_db)
    engine = StreamingEngine(
        localizer, window_s=30.0, batch_size=3, refit_every=20,
        retry=RetryPolicy(max_attempts=3, base_delay=0.0,
                          sleep=noop_sleep))
    if injector is None:
        engine.run(iter(frames))
    else:
        with use_injector(injector):
            engine.run(iter(frames))
    return engine


def test_refit_retry_is_invisible_in_aprad_output(square_db):
    frames = build_stream(square_db)
    baseline = run_aprad(square_db, frames)

    injector = FaultInjector(
        [parse_fault_spec("lp.solve:raise=SolverError,times=1")], seed=5)
    chaotic = run_aprad(square_db, frames, injector)

    assert injector.total_fired == 1
    stats = chaotic.stats()
    assert stats.retries > 0
    assert stats.refits == baseline.stats().refits > 0
    assert final_tracks(chaotic) == final_tracks(baseline)


def test_socket_fleet_survives_killed_connections_and_lost_frames(
        square_db):
    """The TCP twin of the canary: a socket fleet under dropped wire
    frames *and* mid-stream connection kills must match a single
    fault-free engine exactly."""
    from tests.test_service_socket import (FAST_SOCKET, socket_fleet,
                                           wait_connected)
    from tests.test_service_engine import (build_stream as service_stream,
                                           fleet_fixes,
                                           single_engine_fixes)

    frames = service_stream(square_db, devices=12, rounds=4)
    want = single_engine_fixes(square_db, frames)

    # socket.recv drops exercise the resend path on top of the kills;
    # all_threads because the transport reads frames on its own
    # reader threads, never on this one.  The injector arms only once
    # the fleet is connected, so the drops land on live traffic rather
    # than stretching the initial handshakes.
    injector = FaultInjector(
        [parse_fault_spec("socket.recv:drop,times=4")], seed=5)
    with socket_fleet(square_db) as engine:
        half = len(frames) // 2
        engine.ingest_stream(frames[:half])
        engine.flush_publishes()
        wait_connected(engine)
        with use_injector(injector, all_threads=True):
            for shard in range(engine.shards):
                engine.kill_connection(shard)
            engine.ingest_stream(frames[half:])
            engine.drain()
        assert fleet_fixes(engine) == want

    assert injector.total_fired == 4
