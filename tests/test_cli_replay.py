"""End-to-end CLI replay test: capture -> WiGLE CSV -> marauder replay."""

import pytest

from repro.cli import main
from repro.geo.enu import LocalTangentPlane
from repro.geo.wgs84 import GeodeticCoordinate
from repro.knowledge.wigle import export_wigle_csv
from repro.net80211.capture_file import CaptureWriter
from repro.sim import build_attack_scenario

ORIGIN = GeodeticCoordinate(42.6555, -71.3262)


@pytest.fixture
def recorded_scenario(tmp_path):
    """Run the live attack with frame retention; persist everything."""
    scenario = build_attack_scenario(seed=6, ap_count=50, area_m=400.0,
                                     bystander_count=4)
    scenario.world.sniffer.keep_frames = True
    scenario.world.run(duration_s=150.0)

    capture_path = tmp_path / "capture.jsonl"
    with CaptureWriter(capture_path) as writer:
        for received in scenario.world.sniffer.captured:
            writer.write(received)

    plane = LocalTangentPlane(ORIGIN)
    wigle_path = tmp_path / "wigle.csv"
    export_wigle_csv(scenario.truth_db, wigle_path, plane)
    return scenario, capture_path, wigle_path


class TestReplayCommand:
    def test_locates_devices_from_capture(self, recorded_scenario,
                                          capsys):
        scenario, capture_path, wigle_path = recorded_scenario
        code = main(["replay", str(capture_path),
                     "--wigle", str(wigle_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Replayed" in out
        assert "Located" in out
        # The victim shows up with a geodetic fix.
        assert str(scenario.victim.mac) in out

    def test_plan_command(self, recorded_scenario, capsys):
        _, _, wigle_path = recorded_scenario
        code = main(["plan", str(wigle_path), "--cards", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Channel histogram" in out
        assert "monitor channels" in out
        # The generator puts ~94% of APs on 1/6/11: the plan finds them.
        assert "[1, 6, 11]" in out

    def test_plan_without_channels_fails_cleanly(self, tmp_path, capsys):
        wigle_path = tmp_path / "nochannels.csv"
        wigle_path.write_text(
            "netid,ssid,trilat,trilong,channel\n"
            "00:11:22:33:44:55,x,42.65,-71.32,\n")
        code = main(["plan", str(wigle_path)])
        assert code == 1
        assert "cannot plan" in capsys.readouterr().out

    def test_empty_capture_handled(self, tmp_path, capsys):
        capture_path = tmp_path / "empty.jsonl"
        with CaptureWriter(capture_path):
            pass
        plane = LocalTangentPlane(ORIGIN)
        wigle_path = tmp_path / "wigle.csv"
        from repro.knowledge.apdb import ApDatabase
        export_wigle_csv(ApDatabase(), wigle_path, plane)
        code = main(["replay", str(capture_path),
                     "--wigle", str(wigle_path)])
        assert code == 0
        assert "No (mobile, AP)" in capsys.readouterr().out
