"""Radius-estimation LP tests."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.localization.radius_lp import RadiusEstimator
from repro.net80211.mac import MacAddress

A = MacAddress(1)
B = MacAddress(2)
C = MacAddress(3)


def collinear_locations():
    return {A: Point(0.0, 0.0), B: Point(100.0, 0.0), C: Point(260.0, 0.0)}


class TestConstraints:
    def test_co_observed_pair_forces_sum(self):
        estimator = RadiusEstimator(collinear_locations(), r_max=100.0)
        estimate = estimator.fit([{A, B}])
        assert estimate.radii[A] + estimate.radii[B] >= 100.0 - 1e-6
        assert estimate.co_observed_pairs == 1

    def test_never_co_observed_bounds_sum(self):
        estimator = RadiusEstimator(collinear_locations(), r_max=100.0)
        estimate = estimator.fit([{A, B}, {B}, {C}])
        # B and C appear but never together: r_B + r_C <= 160.
        assert estimate.radii[B] + estimate.radii[C] <= 160.0 + 1e-6

    def test_far_pairs_skipped(self):
        # A and C are 260 m apart >= 2 * r_max: no constraint between
        # them can bind, so it is not generated.
        estimator = RadiusEstimator(collinear_locations(), r_max=100.0)
        estimate = estimator.fit([{A}, {C}])
        assert estimate.separated_pairs == 0

    def test_co_observed_distance_clamped_to_2rmax(self):
        # Noisy knowledge can make a co-observed pair look farther
        # apart than 2 r_max; the >= constraint must stay feasible.
        locations = {A: Point(0.0, 0.0), B: Point(250.0, 0.0)}
        estimator = RadiusEstimator(locations, r_max=100.0)
        estimate = estimator.fit([{A, B}])
        assert estimate.radii[A] == pytest.approx(100.0, abs=1e-6)
        assert estimate.radii[B] == pytest.approx(100.0, abs=1e-6)

    def test_bounds_respected(self):
        estimator = RadiusEstimator(collinear_locations(), r_max=70.0,
                                    r_min=5.0)
        estimate = estimator.fit([{A, B}, {B, C}])
        for radius in estimate.radii.values():
            assert 5.0 - 1e-9 <= radius <= 70.0 + 1e-9

    def test_maximizes_radii(self):
        # With only the never-co-observed constraint binding, the LP
        # pushes the total to the constraint boundary.
        locations = {A: Point(0.0, 0.0), B: Point(100.0, 0.0)}
        estimator = RadiusEstimator(locations, r_max=80.0)
        estimate = estimator.fit([{A}, {B}])  # both seen, never together
        total = estimate.radii[A] + estimate.radii[B]
        assert total == pytest.approx(100.0, abs=0.01)


class TestEvidenceThreshold:
    def test_min_evidence_suppresses_weak_negatives(self):
        locations = {A: Point(0.0, 0.0), B: Point(100.0, 0.0)}
        # Each AP appears only once: with min_evidence=2 the "<"
        # constraint is not generated and radii rise to r_max.
        estimator = RadiusEstimator(locations, r_max=80.0, min_evidence=2)
        estimate = estimator.fit([{A}, {B}])
        assert estimate.separated_pairs == 0
        assert estimate.radii[A] == pytest.approx(80.0, abs=1e-6)

    def test_min_evidence_validation(self):
        with pytest.raises(ValueError):
            RadiusEstimator({A: Point(0, 0)}, r_max=10.0, min_evidence=0)


class TestOverestimateFactor:
    def test_applies_and_caps(self):
        locations = {A: Point(0.0, 0.0), B: Point(100.0, 0.0)}
        base = RadiusEstimator(locations, r_max=80.0).fit([{A}, {B}])
        inflated = RadiusEstimator(locations, r_max=80.0,
                                   overestimate_factor=1.5).fit([{A}, {B}])
        for bssid in (A, B):
            expected = min(80.0, base.radii[bssid] * 1.5)
            assert inflated.radii[bssid] == pytest.approx(expected,
                                                          abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            RadiusEstimator({A: Point(0, 0)}, r_max=10.0,
                            overestimate_factor=0.9)


class TestNeighborCap:
    def test_cap_reduces_constraints(self):
        rng = np.random.default_rng(0)
        locations = {MacAddress(i): Point(*rng.uniform(0, 200, 2))
                     for i in range(12)}
        observations = [{m} for m in locations]  # no co-observation
        full = RadiusEstimator(locations, r_max=150.0).fit(observations)
        capped = RadiusEstimator(locations, r_max=150.0,
                                 max_separated_neighbors=2).fit(observations)
        assert capped.separated_pairs <= full.separated_pairs

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            RadiusEstimator({A: Point(0, 0)}, r_max=10.0,
                            max_separated_neighbors=0)


class TestRecoveryQuality:
    @pytest.mark.parametrize("solver", ["simplex", "scipy"])
    def test_recovers_radii_on_dense_evidence(self, solver):
        """With full spatial sampling, estimated radii track the truth."""
        rng = np.random.default_rng(4)
        n = 12
        area = 300.0
        true_r = {}
        locations = {}
        for i in range(n):
            mac = MacAddress(i + 1)
            locations[mac] = Point(*(rng.uniform(0, area, 2)))
            true_r[mac] = float(rng.uniform(40.0, 90.0))
        # Dense corpus: 600 uniform points, exact disc observations.
        observations = []
        for _ in range(600):
            p = Point(*(rng.uniform(0, area, 2)))
            gamma = {m for m, loc in locations.items()
                     if loc.distance_to(p) <= true_r[m]}
            if gamma:
                observations.append(gamma)
        estimator = RadiusEstimator(locations, r_max=120.0, solver=solver)
        estimate = estimator.fit(observations)
        errors = [abs(estimate.radii[m] - true_r[m]) for m in locations]
        assert np.mean(errors) < 25.0

    def test_solvers_agree(self):
        locations = collinear_locations()
        observations = [{A, B}, {B}, {C}]
        ours = RadiusEstimator(locations, r_max=100.0,
                               solver="simplex").fit(observations)
        scipy_fit = RadiusEstimator(locations, r_max=100.0,
                                    solver="scipy").fit(observations)
        total_ours = sum(ours.radii.values())
        total_scipy = sum(scipy_fit.radii.values())
        assert total_ours == pytest.approx(total_scipy, rel=1e-6)
