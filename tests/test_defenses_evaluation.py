"""DefendedStation + trackability-evaluation tests."""

import numpy as np
import pytest

from repro.defenses import (
    DefendedStation,
    MixZone,
    MixZoneMap,
    ProbeHygiene,
    PseudonymPolicy,
    SilentPeriodPolicy,
    evaluate_trackability,
)
from repro.geometry.point import Point
from repro.net80211.mac import MacAddress
from repro.net80211.ssid import Ssid
from repro.net80211.station import PROFILES, MobileStation
from repro.numerics.rng import make_rng
from repro.sim import build_attack_scenario


def make_inner(seed=5):
    rng = make_rng(seed)
    return MobileStation(
        mac=MacAddress.random_pseudonym(rng),
        position=Point(250.0, 75.0),
        profile=PROFILES["aggressive"],
        preferred_networks=[Ssid("home-net"), Ssid("office")],
    )


class TestDefendedStation:
    def test_periodic_rotation_changes_mac(self):
        defended = DefendedStation(inner=make_inner(),
                                   pseudonyms=PseudonymPolicy(
                                       interval_s=30.0),
                                   seed=1)
        original = defended.mac
        for t in range(1, 120):
            defended.tick(float(t))
        assert defended.mac != original
        assert len(defended.macs_used) >= 3

    def test_silence_mutes_bursts(self):
        silence = SilentPeriodPolicy(min_s=1000.0, max_s=1000.0)
        defended = DefendedStation(inner=make_inner(), silence=silence,
                                   seed=1)
        silence.begin(0.0, make_rng(0))
        frames = []
        for t in range(1, 100):
            frames.extend(defended.tick(float(t)))
        assert frames == []
        assert defended.muted_fraction == 1.0

    def test_mix_zone_exit_rotates_and_silences(self):
        zones = MixZoneMap([MixZone(Point(0.0, 0.0), 50.0)])
        defended = DefendedStation(
            inner=make_inner(), mix_zones=zones,
            silence=SilentPeriodPolicy(min_s=5.0, max_s=5.0), seed=1)
        original = defended.mac
        defended.move_to(Point(0.0, 0.0))       # inside the zone
        assert defended.tick(1.0) == []         # muted inside
        defended.move_to(Point(200.0, 0.0))     # exit
        defended.tick(2.0)
        assert defended.mac != original          # fresh identity
        assert defended.tick(3.0) == []          # tail silence
        assert defended.identity_history[-1][1] == 2.0

    def test_hygiene_strips_directed_probes(self):
        defended = DefendedStation(inner=make_inner(),
                                   hygiene=ProbeHygiene(), seed=1)
        frames = defended.tick(1.0)
        assert frames
        assert all(f.ssid.is_wildcard for f in frames)

    def test_no_defenses_is_transparent(self):
        inner = make_inner()
        bare = make_inner()
        defended = DefendedStation(inner=inner, seed=1)
        assert defended.tick(1.0) and bare.tick(1.0)
        assert defended.mac == inner.mac
        assert defended.muted_fraction == 0.0


class TestTrackabilityEvaluation:
    def _run(self, hygiene):
        scenario = build_attack_scenario(seed=23, ap_count=70,
                                         area_m=500.0, bystander_count=4)
        defended = DefendedStation(
            inner=make_inner(),
            pseudonyms=PseudonymPolicy(interval_s=60.0),
            silence=SilentPeriodPolicy(min_s=5.0, max_s=15.0),
            hygiene=ProbeHygiene() if hygiene else None,
            seed=9)
        scenario.world.add_station(defended, scenario.victim_route)
        return evaluate_trackability(scenario.world, defended,
                                     duration_s=300.0,
                                     truth_db=scenario.truth_db)

    def test_pseudonyms_alone_are_linked(self):
        """The paper's point: rotating MACs still leak via directed
        probes — the attacker re-links the pseudonyms."""
        report = self._run(hygiene=False)
        assert report.macs_used >= 4
        assert report.linked_by_attacker >= 3
        assert not report.linkage_broken
        assert report.located_fixes > 0

    def test_probe_hygiene_breaks_linkage(self):
        report = self._run(hygiene=True)
        assert report.macs_used >= 4
        assert report.linkage_broken

    def test_defense_costs_are_reported(self):
        report = self._run(hygiene=True)
        assert 0.0 < report.muted_fraction < 0.8

    def test_device_still_locatable_per_pseudonym(self):
        # Even with hygiene, each pseudonym is individually locatable
        # while it transmits — defenses fragment the track, they do not
        # hide the device.
        report = self._run(hygiene=True)
        assert report.observed_macs >= 2
        assert report.mean_error_m is not None
        assert report.mean_error_m < 80.0
