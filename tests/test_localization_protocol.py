"""Every localizer, built via ``make_localizer``, honors one protocol."""

import pytest

from repro.knowledge.wardrive import Wardriver
from repro.localization import (
    Localizer,
    LocalizationEstimate,
    localizer_names,
    make_localizer,
    make_localizers,
)
from repro.localization.factory import parse_spec
from repro.sim.mobility import grid_route

ALL_SPECS = (
    "m-loc",
    "ap-rad:r_max=150",
    "ap-loc:training_radius_m=90,r_max=150",
    "centroid",
    "nearest-ap",
    "weighted-centroid",
)


@pytest.fixture
def training(square_db):
    route = grid_route(-60.0, -60.0, 160.0, 160.0, rows=6,
                       points_per_row=6)
    return Wardriver(square_db.observable_from).collect(route)


@pytest.fixture
def corpus(square_db):
    """Observation corpus: Γ sets sampled across the square."""
    route = grid_route(10.0, 10.0, 90.0, 90.0, rows=5, points_per_row=5)
    return [square_db.observable_from(point) for point in route]


def build(spec, square_db, training):
    return make_localizer(spec, database=square_db, training=training)


@pytest.mark.parametrize("spec", ALL_SPECS)
class TestProtocolConformance:
    def test_protocol_surface(self, spec, square_db, training):
        localizer = build(spec, square_db, training)
        assert isinstance(localizer, Localizer)
        assert isinstance(localizer.name, str) and localizer.name
        assert isinstance(localizer.supports_partial_fit, bool)
        assert isinstance(localizer.is_fitted, bool)
        assert isinstance(localizer.cache_key(), str)
        for method in ("fit", "partial_fit", "locate", "locate_batch",
                       "locate_many"):
            assert callable(getattr(localizer, method))

    def test_fit_then_locate(self, spec, square_db, training, corpus):
        localizer = build(spec, square_db, training)
        if not localizer.is_fitted:
            localizer.fit(corpus)
        assert localizer.is_fitted
        gamma = set(square_db.bssids)
        estimate = localizer.locate(gamma)
        assert isinstance(estimate, LocalizationEstimate)
        assert estimate.used_ap_count > 0
        # All four discs contain the square's center; every algorithm
        # should land the estimate inside (or near) the square.
        assert -60.0 <= estimate.position.x <= 160.0
        assert -60.0 <= estimate.position.y <= 160.0

    def test_locate_batch_matches_locate(self, spec, square_db, training,
                                         corpus):
        localizer = build(spec, square_db, training)
        if not localizer.is_fitted:
            localizer.fit(corpus)
        gammas = corpus + [[]]
        single = [localizer.locate(gamma) for gamma in gammas]
        batch = localizer.locate_batch(gammas)
        assert len(batch) == len(single)
        for one, many in zip(single, batch):
            assert (one is None) == (many is None)
            if one is not None:
                assert many.algorithm == one.algorithm
                assert many.position.x == pytest.approx(one.position.x)
                assert many.position.y == pytest.approx(one.position.y)

    def test_unknown_gamma_is_unlocatable(self, spec, square_db, training,
                                          corpus):
        localizer = build(spec, square_db, training)
        if not localizer.is_fitted:
            localizer.fit(corpus)
        assert localizer.locate([]) is None

    def test_cache_key_is_stable(self, spec, square_db, training):
        localizer = build(spec, square_db, training)
        assert localizer.cache_key() == localizer.cache_key()


class TestPartialFitContract:
    def test_only_fitted_algorithms_declare_support(self, square_db,
                                                    training):
        support = {
            spec: build(spec, square_db, training).supports_partial_fit
            for spec in ALL_SPECS
        }
        assert support == {
            "m-loc": False,
            "ap-rad:r_max=150": True,
            "ap-loc:training_radius_m=90,r_max=150": True,
            "centroid": False,
            "nearest-ap": False,
            "weighted-centroid": False,
        }

    def test_refit_bumps_aprad_cache_key(self, square_db, corpus):
        localizer = make_localizer("ap-rad:r_max=150", database=square_db)
        localizer.fit(corpus)
        first = localizer.cache_key()
        localizer.partial_fit(corpus[:3])
        assert localizer.cache_key() != first

    def test_stateless_partial_fit_is_a_noop(self, square_db, corpus):
        localizer = make_localizer("m-loc", database=square_db)
        gamma = set(square_db.bssids)
        before = localizer.locate(gamma)
        localizer.partial_fit(corpus)
        after = localizer.locate(gamma)
        assert after.position.x == pytest.approx(before.position.x)
        assert after.position.y == pytest.approx(before.position.y)


class TestFactory:
    def test_names_cover_every_spec(self):
        assert set(localizer_names()) == {
            spec.partition(":")[0] for spec in ALL_SPECS}

    def test_spec_overrides_win_over_defaults(self, square_db):
        localizer = make_localizer("ap-rad:r_max=150", database=square_db,
                                   r_max=80.0, min_evidence=2)
        assert localizer.r_max == 150.0
        assert localizer.min_evidence == 2

    def test_value_coercion(self):
        _, overrides = parse_spec(
            "m-loc:mode=vertex,fallback_range_m=120,"
            "inflate_to_feasible=false")
        assert overrides == {"mode": "vertex", "fallback_range_m": 120,
                             "inflate_to_feasible": False}

    def test_unknown_name_raises(self, square_db):
        with pytest.raises(ValueError, match="unknown localizer"):
            make_localizer("triangulate", database=square_db)

    def test_malformed_option_raises(self, square_db):
        with pytest.raises(ValueError, match="malformed option"):
            make_localizer("m-loc:mode", database=square_db)

    def test_missing_database_raises(self):
        with pytest.raises(ValueError, match="requires a database"):
            make_localizer("m-loc")

    def test_missing_training_raises(self, square_db):
        with pytest.raises(ValueError, match="training"):
            make_localizer("ap-loc:training_radius_m=90,r_max=150",
                           database=square_db)

    def test_bad_keyword_raises_value_error(self, square_db):
        with pytest.raises(ValueError, match="bad options"):
            make_localizer("m-loc:warp_factor=9", database=square_db)

    def test_make_localizers_vectorizes(self, square_db, training):
        localizers = make_localizers(
            ["m-loc", "centroid"], database=square_db, training=training)
        assert [loc.name for loc in localizers] == ["m-loc", "centroid"]
