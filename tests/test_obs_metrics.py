"""repro.obs metrics: instrument semantics, registry, snapshot algebra."""

import json
import threading

import pytest

from repro import obs
from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    parse_key,
)


class TestInstruments:
    def test_counter_increments_monotonically(self):
        counter = Counter("repro.test.hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_counter_rejects_negative_increment(self):
        counter = Counter("repro.test.hits")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("repro.test.entries")
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == 11.5

    def test_histogram_buckets_and_overflow(self):
        hist = Histogram("repro.test.sizes", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 5.0, 50.0, 1e6):
            hist.observe(value)
        assert hist.count == 5
        assert hist.sum == pytest.approx(1000060.5)
        assert hist.bucket_counts == [1, 2, 1]
        assert hist.overflow == 1
        assert hist.mean == pytest.approx(1000060.5 / 5)
        assert hist.cumulative_buckets() == [(1.0, 1), (10.0, 3),
                                             (100.0, 4)]

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("repro.test.bad", bounds=(10.0, 1.0))

    def test_default_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))

    def test_timer_is_a_histogram_of_seconds(self):
        timer = Timer("repro.test.duration")
        with timer.time():
            pass
        assert timer.count == 1
        assert timer.sum >= 0.0
        assert isinstance(timer, Histogram)


class TestKeys:
    def test_labels_sort_deterministically(self):
        registry = MetricsRegistry()
        a = registry.counter("repro.test.located", b="2", a="1")
        b = registry.counter("repro.test.located", a="1", b="2")
        assert a is b
        assert a.key == "repro.test.located{a=1,b=2}"

    def test_parse_key_round_trips(self):
        registry = MetricsRegistry()
        inst = registry.counter("repro.test.x", stage="fit", k=3)
        name, labels = parse_key(inst.key)
        assert name == "repro.test.x"
        assert dict(labels) == {"stage": "fit", "k": "3"}
        assert parse_key("repro.plain") == ("repro.plain", ())


class TestRegistry:
    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("repro.a") is registry.counter("repro.a")
        assert registry.counter("repro.a", x="1") is not registry.counter(
            "repro.a")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro.a")
        with pytest.raises(TypeError):
            registry.gauge("repro.a")

    def test_timer_and_histogram_share_an_instrument(self):
        registry = MetricsRegistry()
        assert registry.timer("repro.t") is registry.histogram("repro.t")

    def test_find_matches_all_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("repro.stage", stage="fit")
        registry.counter("repro.stage", stage="sink")
        registry.counter("repro.other")
        assert len(registry.find("repro.stage")) == 2
        assert len(registry) == 3

    def test_snapshot_is_json_compatible(self):
        registry = MetricsRegistry()
        registry.counter("repro.c").inc(3)
        registry.gauge("repro.g").set(7)
        registry.histogram("repro.h", bounds=(1.0, 2.0)).observe(1.5)
        snap = json.loads(json.dumps(registry.snapshot()))
        assert snap["counters"]["repro.c"] == 3
        assert snap["gauges"]["repro.g"] == 7
        assert snap["histograms"]["repro.h"]["count"] == 1

    def test_delta_subtracts_counters_and_histograms(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro.c")
        hist = registry.histogram("repro.h", bounds=(10.0,))
        counter.inc(2)
        hist.observe(1.0)
        before = registry.snapshot()
        counter.inc(5)
        hist.observe(3.0)
        delta = registry.delta(before)
        assert delta["counters"]["repro.c"] == 5
        assert delta["histograms"]["repro.h"]["count"] == 1
        assert delta["histograms"]["repro.h"]["sum"] == pytest.approx(3.0)

    def test_reset_keeps_handles_valid(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro.c")
        counter.inc(9)
        registry.reset()
        assert counter.value == 0.0
        counter.inc()
        assert registry.snapshot()["counters"]["repro.c"] == 1.0

    def test_merge_adds_counters_and_buckets(self):
        worker = MetricsRegistry()
        worker.counter("repro.c", w="1").inc(4)
        worker.histogram("repro.h", bounds=(1.0, 10.0)).observe(0.5)
        parent = MetricsRegistry()
        parent.counter("repro.c", w="1").inc(1)
        parent.histogram("repro.h", bounds=(1.0, 10.0)).observe(5.0)
        parent.merge(worker.snapshot())
        assert parent.counter("repro.c", w="1").value == 5.0
        hist = parent.histogram("repro.h")
        assert hist.count == 2
        assert hist.bucket_counts == [1, 1]

    def test_merge_takes_incoming_gauge_value(self):
        worker = MetricsRegistry()
        worker.gauge("repro.g").set(42)
        parent = MetricsRegistry()
        parent.gauge("repro.g").set(7)
        parent.merge(worker.snapshot())
        assert parent.gauge("repro.g").value == 42.0

    def test_merge_rejects_mismatched_bounds(self):
        worker = MetricsRegistry()
        worker.histogram("repro.h", bounds=(1.0, 2.0)).observe(1.0)
        parent = MetricsRegistry()
        parent.histogram("repro.h", bounds=(5.0,)).observe(1.0)
        with pytest.raises(ValueError):
            parent.merge(worker.snapshot())

    def test_merge_is_associative_over_submission_order(self):
        snaps = []
        for k in range(3):
            worker = MetricsRegistry()
            worker.counter("repro.c").inc(k + 1)
            worker.histogram("repro.h", bounds=(10.0,)).observe(k)
            snaps.append(worker.snapshot())
        merged = MetricsRegistry()
        for snap in snaps:
            merged.merge(snap)
        assert merged.counter("repro.c").value == 6.0
        assert merged.histogram("repro.h").count == 3


class TestRouting:
    def test_default_registry_is_the_fallback(self):
        assert obs.current_registry() is obs.default_registry()

    def test_use_registry_overrides_and_restores(self):
        mine = MetricsRegistry()
        with obs.use_registry(mine):
            assert obs.current_registry() is mine
            obs.current_registry().counter("repro.test.routed").inc()
        assert obs.current_registry() is obs.default_registry()
        assert mine.counter("repro.test.routed").value == 1.0

    def test_use_registry_nests(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with obs.use_registry(outer):
            with obs.use_registry(inner):
                assert obs.current_registry() is inner
            assert obs.current_registry() is outer

    def test_override_is_thread_local(self):
        mine = MetricsRegistry()
        seen = []
        with obs.use_registry(mine):
            thread = threading.Thread(
                target=lambda: seen.append(obs.current_registry()))
            thread.start()
            thread.join()
        assert seen == [obs.default_registry()]


class TestZeroCost:
    """Satellite 6: importable, and zero-cost when nothing exports."""

    def test_default_registry_importable_from_package(self):
        import repro.obs as module
        assert isinstance(module.default_registry(), MetricsRegistry)

    def test_recording_allocates_nothing_beyond_the_instrument(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro.test.cheap")
        before = len(registry)
        for _ in range(1000):
            counter.inc()
        assert len(registry) == before
        # Instruments carry __slots__ — no per-record dict growth.
        assert not hasattr(counter, "__dict__")
