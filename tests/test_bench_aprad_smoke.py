"""Tier-1 smoke for the AP-Rad LP bench (tiny configuration).

Guards the acceptance properties — warm-started incremental re-fits
must beat the cold dense solve, and every solver path must land on the
same radii — without the full sweep.  Runs the bench script the same
way an operator would, as a standalone process.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH = REPO_ROOT / "benchmarks" / "bench_aprad_lp.py"


def test_bench_aprad_lp_smoke(tmp_path):
    out_path = tmp_path / "aprad_lp.json"
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    result = subprocess.run(
        [sys.executable, str(BENCH), "--aps", "60", "--observations",
         "200", "--repeats", "1", "--json", str(out_path)],
        capture_output=True, text=True, env=env, timeout=300)
    assert result.returncode == 0, result.stderr
    assert "acceptance cell" in result.stdout

    report = json.loads(out_path.read_text())
    assert report["bench"] == "aprad_lp"
    assert report["config"]["aps"] == [60]
    (cell,) = report["results"]
    assert cell["aps"] == 60 and cell["observations"] == 200
    # All three paths ran and produced real timings.
    assert cell["dense_cold_seconds"] > 0.0
    assert cell["revised_cold_seconds"] > 0.0
    assert cell["incremental_seconds"] > 0.0
    assert cell["warm_started"]
    # The correctness property is exact at any scale: every solver
    # path must agree on the radii.
    assert cell["radii_agree"], cell["max_radius_diff_m"]
    # The acceptance property (loose bound — the full sweep is the
    # authoritative ≥3x check; the smoke just guards the direction).
    assert cell["incremental_vs_dense"] > 1.0
    assert (report["acceptance"]["incremental_vs_dense"]
            == cell["incremental_vs_dense"])
