"""Terrain-obstruction tests."""

import pytest

from repro.geometry.point import Point
from repro.sim.terrain import Building, Hill, Terrain


class TestHill:
    def test_blocks_crossing_path(self):
        hill = Hill(Point(50.0, 0.0), radius_m=10.0, loss_db=20.0)
        assert hill.blocks(Point(0, 0), Point(100, 0))

    def test_clear_path_not_blocked(self):
        hill = Hill(Point(50.0, 50.0), radius_m=10.0, loss_db=20.0)
        assert not hill.blocks(Point(0, 0), Point(100, 0))

    def test_grazing_path_not_blocked(self):
        hill = Hill(Point(50.0, 10.0), radius_m=10.0, loss_db=20.0)
        # Path along y=0 is exactly tangent: distance == radius.
        assert not hill.blocks(Point(0, 0), Point(100, 0))

    def test_endpoint_inside_footprint_not_blocked(self):
        # A device standing on the hill still reaches its neighborhood.
        hill = Hill(Point(0.0, 0.0), radius_m=10.0, loss_db=20.0)
        assert not hill.blocks(Point(5.0, 0.0), Point(100.0, 0.0))

    def test_segment_beyond_hill_not_blocked(self):
        hill = Hill(Point(200.0, 0.0), radius_m=10.0, loss_db=20.0)
        assert not hill.blocks(Point(0, 0), Point(100, 0))

    def test_validation(self):
        with pytest.raises(ValueError):
            Hill(Point(0, 0), radius_m=0.0, loss_db=10.0)
        with pytest.raises(ValueError):
            Hill(Point(0, 0), radius_m=5.0, loss_db=-1.0)


class TestTerrain:
    def test_losses_accumulate(self):
        terrain = Terrain([
            Hill(Point(30.0, 0.0), 5.0, 12.0),
            Hill(Point(70.0, 0.0), 5.0, 8.0),
        ])
        assert terrain.obstruction_db(Point(0, 0),
                                      Point(100, 0)) == pytest.approx(20.0)

    def test_flat_terrain_is_free(self):
        assert Terrain().obstruction_db(Point(0, 0), Point(100, 0)) == 0.0

    def test_line_of_sight(self):
        terrain = Terrain([Hill(Point(50.0, 0.0), 5.0, 12.0)])
        assert not terrain.line_of_sight(Point(0, 0), Point(100, 0))
        assert terrain.line_of_sight(Point(0, 20), Point(100, 20))

    def test_add_hill(self):
        terrain = Terrain()
        terrain.add_hill(Hill(Point(50.0, 0.0), 5.0, 12.0))
        assert terrain.obstruction_db(Point(0, 0),
                                      Point(100, 0)) == pytest.approx(12.0)

    def test_direction_symmetric(self):
        terrain = Terrain([Hill(Point(50.0, 1.0), 5.0, 9.0)])
        a, b = Point(0, 0), Point(100, 0)
        assert terrain.obstruction_db(a, b) == terrain.obstruction_db(b, a)


class TestBuilding:
    def test_blocks_crossing_path(self):
        building = Building(40.0, -10.0, 60.0, 10.0, loss_db=15.0)
        assert building.blocks(Point(0, 0), Point(100, 0))

    def test_clear_path(self):
        building = Building(40.0, 20.0, 60.0, 40.0, loss_db=15.0)
        assert not building.blocks(Point(0, 0), Point(100, 0))

    def test_diagonal_crossing(self):
        building = Building(40.0, 40.0, 60.0, 60.0, loss_db=15.0)
        assert building.blocks(Point(0, 0), Point(100, 100))

    def test_endpoint_inside_not_blocked(self):
        building = Building(40.0, -10.0, 60.0, 10.0, loss_db=15.0)
        assert not building.blocks(Point(50.0, 0.0), Point(100.0, 0.0))

    def test_segment_short_of_building(self):
        building = Building(40.0, -10.0, 60.0, 10.0, loss_db=15.0)
        assert not building.blocks(Point(0, 0), Point(30, 0))

    def test_parallel_segment_outside(self):
        building = Building(40.0, 10.0, 60.0, 20.0, loss_db=15.0)
        assert not building.blocks(Point(0, 0), Point(100, 0))

    def test_contains(self):
        building = Building(0.0, 0.0, 10.0, 10.0, loss_db=15.0)
        assert building.contains(Point(5.0, 5.0))
        assert not building.contains(Point(15.0, 5.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            Building(10.0, 0.0, 5.0, 10.0, loss_db=15.0)
        with pytest.raises(ValueError):
            Building(0.0, 0.0, 10.0, 10.0, loss_db=-1.0)

    def test_terrain_mixes_hills_and_buildings(self):
        terrain = Terrain()
        terrain.add_hill(Hill(Point(30.0, 0.0), 5.0, 12.0))
        terrain.add_building(Building(60.0, -5.0, 70.0, 5.0, 8.0))
        assert terrain.obstruction_db(Point(0, 0),
                                      Point(100, 0)) == pytest.approx(20.0)
        assert not terrain.line_of_sight(Point(0, 0), Point(100, 0))
        assert terrain.line_of_sight(Point(0, 50), Point(100, 50))
