"""Serving-layer tests: the five GET endpoints plus the admin verbs."""

import functools
import json
import urllib.error
import urllib.request

import pytest

from repro.localization import MLoc
from repro.service import ServiceServer, ShardConfig, ShardedEngine

from tests.test_service_engine import build_stream, station


@pytest.fixture
def served(square_db):
    engine = ShardedEngine(
        functools.partial(MLoc, square_db), shards=2,
        transport="thread",
        config=ShardConfig(window_s=30.0, batch_size=32),
        publish_batch=8)
    engine.run(iter(build_stream(square_db, devices=6, rounds=2)))
    server = ServiceServer(engine, port=0, allow_chaos=True).start()
    host, port = server.address
    yield engine, f"http://{host}:{port}"
    server.stop()
    engine.stop()


def get(base, path):
    try:
        with urllib.request.urlopen(base + path, timeout=10) as reply:
            return reply.status, reply.read().decode(), dict(
                reply.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode(), dict(error.headers)


def post(base, path):
    request = urllib.request.Request(base + path, method="POST",
                                     data=b"")
    try:
        with urllib.request.urlopen(request, timeout=10) as reply:
            return reply.status, reply.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


class TestGetEndpoints:
    def test_health_is_ok(self, served):
        _, base = served
        status, body, _ = get(base, "/health")
        assert status == 200
        report = json.loads(body)
        assert report["healthy"]
        assert len(report["shards"]) == 2

    def test_locate_known_device(self, served):
        engine, base = served
        mobile = station(0)
        status, body, _ = get(base, f"/locate?device={mobile}")
        assert status == 200
        reply = json.loads(body)
        assert reply["located"]
        timestamp, estimate = engine.locate(mobile)
        assert reply["fix"]["timestamp"] == timestamp
        assert reply["fix"]["x"] == estimate.position.x
        assert reply["fix"]["algorithm"] == "m-loc"

    def test_locate_unknown_device_is_404(self, served):
        _, base = served
        status, body, _ = get(base, "/locate?device=0d:ea:db:ee:f0:00")
        assert status == 404
        assert json.loads(body)["located"] is False

    def test_locate_without_device_is_400(self, served):
        _, base = served
        assert get(base, "/locate")[0] == 400

    def test_locate_with_garbage_mac_is_400(self, served):
        _, base = served
        assert get(base, "/locate?device=not-a-mac")[0] == 400

    def test_snapshot_lists_every_device(self, served):
        _, base = served
        status, body, _ = get(base, "/snapshot")
        assert status == 200
        snapshot = json.loads(body)
        assert snapshot["devices"] == 6
        assert len(snapshot["fixes"]) == 6

    def test_stats_are_merged_engine_stats(self, served):
        engine, base = served
        status, body, _ = get(base, "/stats")
        assert status == 200
        stats = json.loads(body)
        assert stats["frames_ingested"] \
            == engine.stats().frames_ingested

    def test_metrics_is_prometheus_text(self, served):
        _, base = served
        status, body, headers = get(base, "/metrics")
        assert status == 200
        assert "text/plain" in headers["Content-Type"]
        assert "# TYPE" in body
        assert "repro_engine_frames_total" in body

    def test_unknown_route_is_404(self, served):
        _, base = served
        assert get(base, "/nope")[0] == 404


class TestAdminEndpoints:
    def test_drain_returns_merged_stats(self, served):
        _, base = served
        status, body = post(base, "/drain")
        assert status == 200
        reply = json.loads(body)
        assert reply["drained"]
        assert reply["stats"]["frames_ingested"] > 0

    def test_chaos_kill_then_reads_recover(self, served):
        engine, base = served
        before = get(base, "/snapshot")[1]
        status, body = post(base, "/chaos/kill?shard=1")
        assert status == 200
        assert json.loads(body)["killed"] == 1
        # A state-touching read restarts the shard and answers
        # exactly as before the kill.
        assert get(base, "/snapshot")[1] == before
        report = json.loads(get(base, "/health")[1])
        assert report["healthy"]
        assert report["shards"][1]["restarts"] == 1

    def test_chaos_kill_validates_shard(self, served):
        _, base = served
        assert post(base, "/chaos/kill")[0] == 400
        assert post(base, "/chaos/kill?shard=9")[0] == 400

    def test_chaos_disabled_by_default(self, square_db):
        engine = ShardedEngine(
            functools.partial(MLoc, square_db), shards=1,
            transport="thread", publish_batch=8)
        server = ServiceServer(engine, port=0).start()
        host, port = server.address
        try:
            status, _ = post(f"http://{host}:{port}",
                             "/chaos/kill?shard=0")
            assert status == 403
        finally:
            server.stop()
            engine.stop()
