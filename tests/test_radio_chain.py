"""Receiver-chain tests: the Friis cascade and the paper's claims."""

import math

import pytest

from repro.radio.chain import ReceiverChain
from repro.radio.components import (
    Antenna,
    Connector,
    LowNoiseAmplifier,
    Splitter,
    WirelessNic,
    catalog,
)
from repro.sniffer.receiver import (
    build_dlink_chain,
    build_hg2415u_chain,
    build_marauder_chain,
    build_src_chain,
)


class TestNoiseCascade:
    def test_bare_nic_chain_has_nic_noise_figure(self):
        # "Without LNA, the noise figure of the receiver chain is that
        # of the WNIC."
        chain = build_src_chain()
        assert chain.noise_figure_db == pytest.approx(4.0, abs=1e-9)

    def test_lna_dominates_cascade(self):
        # Paper eq. (15): with a high-gain LNA first, NF ≈ NF_lna.
        chain = build_marauder_chain()
        assert chain.noise_figure_db == pytest.approx(1.5, abs=0.15)

    def test_nf_improvement_in_paper_range(self):
        # "We have a noise figure improvement of 2.5 ~ 4.5 dB."
        improvement = (build_src_chain().noise_figure_db
                       - build_marauder_chain().noise_figure_db)
        assert 2.0 <= improvement <= 4.5

    def test_friis_formula_explicit(self):
        # Hand-check a two-stage cascade: LNA (G=20 dB, F=2) then a NIC
        # (F=4 linear): F_total = 2 + (4-1)/100 = 2.03.
        lna = LowNoiseAmplifier("lna", gain_db=20.0,
                                noise_figure_db=10 * math.log10(2.0))
        nic = WirelessNic("nic", noise_figure_db=10 * math.log10(4.0))
        chain = ReceiverChain(antenna=Antenna("a", 0.0), nic=nic,
                              blocks=[lna])
        assert chain.noise_factor == pytest.approx(2.03, rel=1e-6)

    def test_passive_loss_raises_nf(self):
        # A splitter *before* any amplification adds its loss to the NF.
        parts = catalog()
        lossy = ReceiverChain(antenna=parts["HG2415U"], nic=parts["SRC"],
                              blocks=[parts["4-way-splitter"]])
        assert lossy.noise_figure_db > build_hg2415u_chain().noise_figure_db

    def test_connector_loss_counts(self):
        # Under the paper's passive-blocks-are-noiseless assumption, a
        # 1 dB connector contributes via the Friis denominator only:
        # F = 1 + (F_nic - 1) / G_conn.
        parts = catalog()
        with_connector = ReceiverChain(
            antenna=parts["HG2415U"], nic=parts["SRC"],
            blocks=[Connector("pigtail", loss_db=1.0)])
        f_nic = 10 ** 0.4
        expected_factor = 1.0 + (f_nic - 1.0) / 10 ** (-0.1)
        assert with_connector.noise_factor == pytest.approx(
            expected_factor, rel=1e-9)
        assert (build_hg2415u_chain().noise_figure_db
                < with_connector.noise_figure_db
                < 4.0 + 1.0 + 1e-9)


class TestGainAndSplit:
    def test_pre_nic_gain_39_db(self):
        # "45 - 10 log 4 = 39 dB of amplification" (minus our modeled
        # 0.5 dB splitter excess loss).
        chain = build_marauder_chain()
        assert chain.pre_nic_gain_db == pytest.approx(45.0 - 6.02 - 0.5,
                                                      abs=0.05)

    def test_split_outputs(self):
        assert build_marauder_chain().split_outputs() == 4
        assert build_src_chain().split_outputs() == 1

    def test_antenna_gain_property(self):
        assert build_marauder_chain().antenna_gain_dbi == 15.0
        assert build_dlink_chain().antenna_gain_dbi == 2.0


class TestSensitivity:
    def test_sensitivity_formula(self):
        # P_min = -174 + NF + SNR_min + 10 log B for the bare SRC:
        # -174 + 4 + 10 + 73.42 = -86.58 dBm.
        chain = build_src_chain()
        expected = -174.0 + 4.0 + 10.0 + 10 * math.log10(22e6)
        assert chain.sensitivity_dbm == pytest.approx(expected, abs=1e-6)

    def test_lna_chain_more_sensitive(self):
        assert (build_marauder_chain().sensitivity_dbm
                < build_hg2415u_chain().sensitivity_dbm)

    def test_snr_and_decode(self):
        chain = build_src_chain()
        at_sensitivity = chain.sensitivity_dbm
        assert chain.snr_db(at_sensitivity) == pytest.approx(
            chain.nic.snr_min_db)
        assert chain.can_decode(at_sensitivity + 1.0)
        assert not chain.can_decode(at_sensitivity - 1.0)

    def test_describe_mentions_key_numbers(self):
        text = build_marauder_chain().describe()
        assert "noise figure" in text
        assert "sensitivity" in text
