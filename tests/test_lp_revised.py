"""Sparse revised-simplex tests: pinned to the dense tableau solver.

The revised engine (:mod:`repro.lp.revised`) must agree with
:func:`repro.lp.simplex.solve_lp` on every instance both can express —
that equivalence is the contract that lets AP-Rad swap solvers freely.
Property tests generate random bounded LPs and compare; targeted tests
cover the degenerate / warm-start / softened-infeasible corners that
random sampling rarely hits.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lp import LpProblem, LpState, solve_lp, solve_revised

# Quantized draws: see the rationale in test_lp_simplex.py — denormal
# coefficients make instances so ill-conditioned that two correct
# solvers disagree within their own tolerances.
COEF = st.floats(min_value=-5.0, max_value=5.0,
                 allow_nan=False, allow_infinity=False,
                 ).map(lambda v: round(v * 64.0) / 64.0)
RHS = st.floats(min_value=0.0, max_value=10.0,
                allow_nan=False, allow_infinity=False,
                ).map(lambda v: round(v * 64.0) / 64.0)


def _dense_constraints(constraints, n):
    """Convert sparse (coeffs, sense, rhs) rows to solve_lp matrices."""
    a_ub, b_ub, a_eq, b_eq = [], [], [], []
    for coefficients, sense, rhs in constraints:
        row = [0.0] * n
        for index, value in coefficients.items():
            row[index] = value
        if sense == "<=":
            a_ub.append(row)
            b_ub.append(rhs)
        elif sense == ">=":
            a_ub.append([-v for v in row])
            b_ub.append(-rhs)
        else:
            a_eq.append(row)
            b_eq.append(rhs)
    return a_ub or None, b_ub or None, a_eq or None, b_eq or None


class TestBasicLps:
    def test_textbook_maximize(self):
        result = solve_revised(
            [1.0, 1.0],
            [({0: 1.0, 1: 2.0}, "<=", 4.0), ({0: 3.0, 1: 1.0}, "<=", 6.0)],
            lower=[0.0, 0.0], upper=[None, None], maximize=True)
        assert result.is_optimal
        assert result.objective == pytest.approx(2.8)
        assert result.x[0] == pytest.approx(1.6)
        assert result.x[1] == pytest.approx(1.2)

    def test_minimize_with_ge_row(self):
        result = solve_revised(
            [1.0, 1.0], [({0: 1.0, 1: 1.0}, ">=", 2.0)],
            lower=[0.0, 0.0], upper=[None, None])
        assert result.is_optimal
        assert result.objective == pytest.approx(2.0)

    def test_equality_constraint(self):
        result = solve_revised(
            [1.0, 2.0], [({0: 1.0, 1: 1.0}, "==", 3.0)],
            lower=[0.0, 0.0], upper=[None, None])
        assert result.is_optimal
        assert result.objective == pytest.approx(3.0)
        assert result.x[0] == pytest.approx(3.0)

    def test_bounds_only(self):
        result = solve_revised([1.0], [], lower=[2.5], upper=[7.0])
        assert result.is_optimal
        assert result.x[0] == pytest.approx(2.5)
        flipped = solve_revised([1.0], [], lower=[2.5], upper=[7.0],
                                maximize=True)
        assert flipped.x[0] == pytest.approx(7.0)

    def test_negative_lower_bound(self):
        result = solve_revised([1.0], [({0: 1.0}, "<=", 4.0)],
                               lower=[-3.0], upper=[None])
        assert result.is_optimal
        assert result.x[0] == pytest.approx(-3.0)

    def test_state_exported_on_optimum(self):
        result = solve_revised(
            [1.0, 1.0], [({0: 1.0, 1: 1.0}, "<=", 4.0)],
            lower=[0.0, 0.0], upper=[None, None], maximize=True)
        assert result.is_optimal
        assert isinstance(result.state, LpState)
        assert len(result.state.row_basic) == 1
        assert not result.warm_started


class TestDegenerateOutcomes:
    def test_infeasible(self):
        result = solve_revised(
            [1.0], [({0: 1.0}, "<=", 1.0), ({0: 1.0}, ">=", 3.0)],
            lower=[0.0], upper=[None])
        assert result.status == "infeasible"
        assert result.x is None

    def test_unbounded(self):
        result = solve_revised([1.0], [], lower=[0.0], upper=[None],
                               maximize=True)
        assert result.status == "unbounded"

    def test_beale_degenerate_terminates(self):
        # The classic cycling example: cycles under naive Dantzig
        # pricing, so termination exercises the Bland fallback path.
        constraints = [
            ({0: 0.25, 1: -60.0, 2: -0.04, 3: 9.0}, "<=", 0.0),
            ({0: 0.5, 1: -90.0, 2: -0.02, 3: 3.0}, "<=", 0.0),
            ({2: 1.0}, "<=", 1.0),
        ]
        result = solve_revised([-0.75, 150.0, -0.02, 6.0], constraints,
                               lower=[0.0] * 4, upper=[None] * 4)
        assert result.is_optimal
        assert result.objective == pytest.approx(-0.05)

    def test_beale_under_forced_bland(self):
        # bland_after=0 makes every pivot use Bland's rule: slower but
        # provably finite, and it must land on the same optimum.
        constraints = [
            ({0: 0.25, 1: -60.0, 2: -0.04, 3: 9.0}, "<=", 0.0),
            ({0: 0.5, 1: -90.0, 2: -0.02, 3: 3.0}, "<=", 0.0),
            ({2: 1.0}, "<=", 1.0),
        ]
        result = solve_revised([-0.75, 150.0, -0.02, 6.0], constraints,
                               lower=[0.0] * 4, upper=[None] * 4,
                               bland_after=0)
        assert result.is_optimal
        assert result.objective == pytest.approx(-0.05)

    def test_redundant_equalities(self):
        result = solve_revised(
            [1.0, 1.0],
            [({0: 1.0, 1: 1.0}, "==", 2.0), ({0: 2.0, 1: 2.0}, "==", 4.0)],
            lower=[0.0, 0.0], upper=[None, None])
        assert result.is_optimal
        assert result.objective == pytest.approx(2.0)


class TestDenseSolverEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_random_lps_match_dense_tableau(self, data):
        n = data.draw(st.integers(min_value=1, max_value=5))
        m = data.draw(st.integers(min_value=0, max_value=6))
        cost = data.draw(st.lists(COEF, min_size=n, max_size=n))
        constraints = []
        for _ in range(m):
            row = data.draw(st.lists(COEF, min_size=n, max_size=n))
            sense = data.draw(st.sampled_from(["<=", ">="]))
            rhs = data.draw(RHS)
            if sense == ">=":
                # Keep the origin feasible so most draws are solvable.
                rhs = -rhs
            coefficients = {j: v for j, v in enumerate(row) if v != 0.0}
            constraints.append((coefficients, sense, rhs))
        maximize = data.draw(st.booleans())

        revised = solve_revised(cost, constraints, lower=[0.0] * n,
                                upper=[10.0] * n, maximize=maximize)
        a_ub, b_ub, a_eq, b_eq = _dense_constraints(constraints, n)
        dense = solve_lp(cost, a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq,
                         bounds=[(0.0, 10.0)] * n, maximize=maximize)
        assert revised.status == dense.status
        if dense.is_optimal:
            assert revised.objective == pytest.approx(dense.objective,
                                                      rel=1e-6, abs=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_random_sparse_rows_match_dense(self, data):
        # The AP-Rad shape: many variables, 2-nonzero rows.
        n = data.draw(st.integers(min_value=3, max_value=8))
        m = data.draw(st.integers(min_value=1, max_value=10))
        constraints = []
        for _ in range(m):
            i = data.draw(st.integers(min_value=0, max_value=n - 1))
            j = data.draw(st.integers(min_value=0, max_value=n - 1))
            if i == j:
                j = (i + 1) % n
            sense = data.draw(st.sampled_from(["<=", ">="]))
            rhs = data.draw(st.floats(min_value=1.0, max_value=15.0,
                                      allow_nan=False,
                                      ).map(lambda v: round(v * 64.0) / 64.0))
            constraints.append(({i: 1.0, j: 1.0}, sense, rhs))
        cost = [1.0] * n

        revised = solve_revised(cost, constraints, lower=[0.0] * n,
                                upper=[10.0] * n, maximize=True)
        a_ub, b_ub, a_eq, b_eq = _dense_constraints(constraints, n)
        dense = solve_lp(cost, a_ub=a_ub, b_ub=b_ub,
                         bounds=[(0.0, 10.0)] * n, maximize=True)
        assert revised.status == dense.status
        if dense.is_optimal:
            assert revised.objective == pytest.approx(dense.objective,
                                                      rel=1e-6, abs=1e-6)


class TestWarmStart:
    def test_warm_resolve_matches_cold(self):
        constraints = [
            ({0: 1.0, 1: 1.0}, ">=", 100.0),
            ({1: 1.0, 2: 1.0}, "<=", 160.0),
        ]
        cold = solve_revised([1.0, 1.0, 1.0], constraints,
                             lower=[0.0] * 3, upper=[100.0] * 3,
                             maximize=True)
        assert cold.is_optimal
        warm = solve_revised([1.0, 1.0, 1.0], constraints,
                             lower=[0.0] * 3, upper=[100.0] * 3,
                             maximize=True, warm_start=cold.state)
        assert warm.is_optimal
        assert warm.warm_started
        assert warm.objective == pytest.approx(cold.objective)
        # Restarting at the optimum needs no pivots at all.
        assert warm.iterations == 0

    def test_warm_start_after_appending_rows(self):
        base = [
            ({0: 1.0, 1: 1.0}, ">=", 100.0),
            ({1: 1.0, 2: 1.0}, "<=", 160.0),
        ]
        first = solve_revised([1.0, 1.0, 1.0], base,
                              lower=[0.0] * 3, upper=[100.0] * 3,
                              maximize=True)
        grown = base + [({0: 1.0, 2: 1.0}, "<=", 120.0)]
        cold = solve_revised([1.0, 1.0, 1.0], grown,
                             lower=[0.0] * 3, upper=[100.0] * 3,
                             maximize=True)
        warm = solve_revised([1.0, 1.0, 1.0], grown,
                             lower=[0.0] * 3, upper=[100.0] * 3,
                             maximize=True, warm_start=first.state)
        assert warm.is_optimal and cold.is_optimal
        assert warm.warm_started
        assert warm.objective == pytest.approx(cold.objective)
        np.testing.assert_allclose(np.sort(warm.x), np.sort(cold.x),
                                   atol=1e-6)

    def test_stale_state_degrades_gracefully(self):
        # A state referencing variables the problem no longer has must
        # fall back to a cold-ish start, not crash or return garbage.
        stale = LpState(row_basic=(("v", 99),), at_upper=(("v", 42),))
        result = solve_revised(
            [1.0, 1.0], [({0: 1.0, 1: 1.0}, "<=", 4.0)],
            lower=[0.0, 0.0], upper=[None, None], maximize=True,
            warm_start=stale)
        assert result.is_optimal
        assert result.objective == pytest.approx(4.0)


class TestSoftenedInfeasible:
    def test_slack_penalty_agreement(self):
        # The radius LP's softened shape: a separated row contradicted
        # by a co-observation gets a penalized slack w so the system
        # stays feasible.  Both solvers must agree on the compromise.
        problem = LpProblem(maximize=True)
        r_a = problem.add_variable("r_a", low=1.0, up=100.0)
        r_b = problem.add_variable("r_b", low=1.0, up=100.0)
        w = problem.add_variable("w", low=0.0)
        problem.set_objective({r_a: 1.0, r_b: 1.0, w: -10.0})
        problem.add_constraint({r_a: 1.0, r_b: 1.0}, ">=", 120.0)
        problem.add_constraint({r_a: 1.0, r_b: 1.0, w: -1.0}, "<=", 50.0)
        dense = problem.solve(solver="simplex")
        revised = problem.solve_revised()
        assert dense.is_optimal and revised.is_optimal
        assert revised.objective == pytest.approx(dense.objective,
                                                  abs=1e-6)
        # The slack absorbs exactly the contradiction: w = 120 - 50.
        assert revised.x[w] == pytest.approx(70.0, abs=1e-6)


class TestLpProblemIntegration:
    def test_solver_dispatch(self):
        problem = LpProblem(maximize=True)
        x = problem.add_variable("x", low=0.0, up=5.0)
        problem.set_objective({x: 1.0})
        problem.add_constraint({x: 1.0}, "<=", 3.0)
        via_dense = problem.solve(solver="simplex")
        via_revised = problem.solve(solver="revised")
        assert via_dense.objective == pytest.approx(3.0)
        assert via_revised.objective == pytest.approx(3.0)

    def test_iteration_counts_reported(self):
        problem = LpProblem(maximize=True)
        x = problem.add_variable("x", low=0.0, up=5.0)
        y = problem.add_variable("y", low=0.0, up=5.0)
        problem.set_objective({x: 2.0, y: 1.0})
        problem.add_constraint({x: 1.0, y: 1.0}, "<=", 6.0)
        dense = problem.solve(solver="simplex")
        revised = problem.solve_revised()
        assert dense.iterations > 0
        assert revised.iterations > 0


class TestRefactorizationParity:
    """``refactorizations`` reads uniformly across backends."""

    def _problem(self):
        problem = LpProblem(maximize=True)
        x = problem.add_variable("x", low=0.0, up=5.0)
        y = problem.add_variable("y", low=0.0, up=5.0)
        problem.set_objective({x: 2.0, y: 1.0})
        problem.add_constraint({x: 1.0, y: 1.0}, "<=", 6.0)
        return problem

    def test_solve_dispatch_agrees_with_solve_revised(self):
        problem = self._problem()
        dispatched = problem.solve(solver="revised")
        direct = problem.solve_revised()
        assert dispatched.iterations == direct.iterations
        assert dispatched.refactorizations == direct.refactorizations
        assert dispatched.objective == pytest.approx(direct.objective)

    def test_dense_backend_reports_zero_refactorizations(self):
        result = self._problem().solve(solver="simplex")
        assert result.is_optimal
        assert result.refactorizations == 0

    def test_scipy_backend_reports_zero_refactorizations(self):
        pytest.importorskip("scipy.optimize")
        result = self._problem().solve(solver="scipy")
        assert result.is_optimal
        assert result.refactorizations == 0

    def test_pivot_metrics_land_in_routed_registry(self):
        from repro import obs

        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            result = self._problem().solve(solver="revised")
        counters = registry.snapshot()["counters"]
        assert counters["repro.lp.revised.pivots"] == result.iterations
        assert (counters["repro.lp.revised.refactorizations"]
                == result.refactorizations)


class TestScipyCrossCheck:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_random_lps_match_scipy(self, data):
        linprog = pytest.importorskip("scipy.optimize").linprog
        n = data.draw(st.integers(min_value=1, max_value=5))
        m = data.draw(st.integers(min_value=0, max_value=6))
        cost = data.draw(st.lists(COEF, min_size=n, max_size=n))
        rows = [data.draw(st.lists(COEF, min_size=n, max_size=n))
                for _ in range(m)]
        b_ub = data.draw(st.lists(RHS, min_size=m, max_size=m))
        constraints = [
            ({j: v for j, v in enumerate(row) if v != 0.0}, "<=", rhs)
            for row, rhs in zip(rows, b_ub)
        ]

        ours = solve_revised(cost, constraints, lower=[0.0] * n,
                             upper=[10.0] * n)
        reference = linprog(cost, A_ub=np.array(rows) if m else None,
                            b_ub=np.array(b_ub) if m else None,
                            bounds=[(0.0, 10.0)] * n, method="highs")
        if reference.status == 0:
            assert ours.is_optimal
            assert ours.objective == pytest.approx(reference.fun,
                                                   rel=1e-6, abs=1e-6)
        elif reference.status == 2:
            assert ours.status == "infeasible"
