"""Seed-robustness: the headline orderings are not one lucky draw.

The Fig 13-16 claims must hold across independently generated campuses;
these tests sweep several seeds at reduced scale and require the
paper's orderings in (at least) the overwhelming majority of runs —
guarding the reproduction against seed cherry-picking.
"""

import pytest

from repro.analysis import run_localization_experiment
from repro.localization import CentroidLocalizer, MLoc
from repro.sim.scenarios import build_disc_model_experiment

SEEDS = (3, 11, 29, 47, 83)


@pytest.fixture(scope="module")
def sweep():
    outcomes = []
    for seed in SEEDS:
        exp = build_disc_model_experiment(seed=seed, ap_count=220,
                                          area_m=400.0, case_count=40,
                                          extra_corpus=300)
        aprad = exp.make_aprad()
        aprad.fit(exp.corpus)
        reports = run_localization_experiment(
            {"m-loc": MLoc(exp.mloc_db), "ap-rad": aprad,
             "centroid": CentroidLocalizer(exp.location_db)},
            exp.cases)
        outcomes.append(reports)
    return outcomes


class TestSeedRobustness:
    def test_mloc_beats_centroid_every_seed(self, sweep):
        for reports in sweep:
            assert (reports["m-loc"].mean_error()
                    < reports["centroid"].mean_error())

    def test_mloc_beats_aprad_in_most_seeds(self, sweep):
        wins = sum(1 for reports in sweep
                   if reports["m-loc"].mean_error()
                   <= reports["ap-rad"].mean_error())
        assert wins >= len(SEEDS) - 1

    def test_aprad_beats_centroid_in_most_seeds(self, sweep):
        wins = sum(1 for reports in sweep
                   if reports["ap-rad"].mean_error()
                   < reports["centroid"].mean_error())
        assert wins >= len(SEEDS) - 1

    def test_mloc_coverage_high_every_seed(self, sweep):
        for reports in sweep:
            coverage = reports["m-loc"].coverage_probability_vs_min_k(1)
            assert coverage > 0.8

    def test_aprad_coverage_below_mloc_every_seed(self, sweep):
        for reports in sweep:
            assert (reports["ap-rad"].coverage_probability_vs_min_k(1)
                    <= reports["m-loc"].coverage_probability_vs_min_k(1))

    def test_errors_campus_scale_every_seed(self, sweep):
        for reports in sweep:
            for report in reports.values():
                assert report.mean_error() < 60.0
