"""FallbackLocalizer: tier selection, spec construction, cache keys."""

import pytest

from repro import obs
from repro.faults import InfeasibleError, SolverError
from repro.geometry.point import Point
from repro.localization import (
    FallbackLocalizer,
    LocalizationEstimate,
    Localizer,
    make_localizer,
)

from tests.helpers import make_record


class StubLocalizer(Localizer):
    """Scripted tier: answers, answers None, raises, or is unfitted."""

    def __init__(self, name, behavior="answer", fitted=True):
        self.name = name
        self.behavior = behavior
        self.fitted = fitted
        self.calls = 0
        self.fit_calls = 0

    @property
    def is_fitted(self):
        return self.fitted

    def fit(self, observations):
        self.fit_calls += 1
        return f"{self.name}-fit"

    def locate(self, observed):
        self.calls += 1
        if self.behavior == "raise":
            raise SolverError(f"{self.name} blew up", status="numerical")
        if self.behavior == "infeasible":
            raise InfeasibleError()
        if self.behavior == "none":
            return None
        return LocalizationEstimate(position=Point(1.0, 2.0),
                                    algorithm=self.name)


def gamma():
    return [make_record(0, 0.0, 0.0, 80.0).bssid]


class TestTierSelection:
    def test_primary_answers_when_healthy(self):
        primary = StubLocalizer("primary")
        backup = StubLocalizer("backup")
        chain = FallbackLocalizer([primary, backup])
        estimate = chain.locate(gamma())
        assert estimate.algorithm == "primary"
        assert chain.last_tier == "primary"
        assert backup.calls == 0

    @pytest.mark.parametrize("behavior", ["raise", "infeasible", "none"])
    def test_degrades_past_failing_primary(self, behavior):
        primary = StubLocalizer("primary", behavior=behavior)
        backup = StubLocalizer("backup")
        chain = FallbackLocalizer([primary, backup])
        estimate = chain.locate(gamma())
        assert estimate.algorithm == "backup"
        assert chain.last_tier == "backup"

    def test_unfitted_tier_skipped_without_calling(self):
        primary = StubLocalizer("primary", fitted=False)
        backup = StubLocalizer("backup")
        chain = FallbackLocalizer([primary, backup])
        assert chain.locate(gamma()).algorithm == "backup"
        assert primary.calls == 0

    def test_exhausted_chain_returns_none(self):
        chain = FallbackLocalizer([StubLocalizer("a", behavior="none"),
                                   StubLocalizer("b", behavior="raise")])
        assert chain.locate(gamma()) is None
        assert chain.last_tier is None

    def test_degradation_is_counted(self):
        registry = obs.MetricsRegistry()
        chain = FallbackLocalizer([StubLocalizer("a", behavior="raise"),
                                   StubLocalizer("b")])
        with obs.use_registry(registry):
            chain.locate(gamma())
            chain.locate(gamma())
        counters = registry.snapshot()["counters"]
        assert counters[
            "repro.localization.fallback.errors"
            "{error=SolverError,tier=a}"] == 2
        assert counters[
            "repro.localization.fallback.answered{rank=1,tier=b}"] == 2
        assert counters["repro.localization.fallback.degraded"] == 2

    def test_non_solver_errors_propagate(self):
        class Buggy(StubLocalizer):
            def locate(self, observed):
                raise KeyError("a real bug, not a degradation trigger")

        chain = FallbackLocalizer([Buggy("buggy"), StubLocalizer("b")])
        with pytest.raises(KeyError):
            chain.locate(gamma())


class TestChainProtocol:
    def test_requires_at_least_one_tier(self):
        with pytest.raises(ValueError):
            FallbackLocalizer([])

    def test_name_and_cache_key_compose(self):
        chain = FallbackLocalizer([StubLocalizer("a"), StubLocalizer("b")])
        assert chain.name == "fallback(a>b)"
        assert chain.cache_key() == "a|b"

    def test_fit_reaches_every_tier(self):
        tiers = [StubLocalizer("a"), StubLocalizer("b")]
        chain = FallbackLocalizer(tiers)
        assert chain.fit([]) == "a-fit"
        assert [tier.fit_calls for tier in tiers] == [1, 1]

    def test_is_fitted_when_any_tier_is(self):
        chain = FallbackLocalizer([StubLocalizer("a", fitted=False),
                                   StubLocalizer("b")])
        assert chain.is_fitted
        chain = FallbackLocalizer([StubLocalizer("a", fitted=False)])
        assert not chain.is_fitted


class TestSpecConstruction:
    def test_make_localizer_builds_chain(self, square_db):
        chain = make_localizer("m-loc+fallback:centroid,nearest-ap",
                               database=square_db)
        assert isinstance(chain, FallbackLocalizer)
        assert [tier.name for tier in chain.tiers] == \
            ["m-loc", "centroid", "nearest-ap"]

    def test_primary_spec_options_survive(self, square_db):
        chain = make_localizer(
            "m-loc:fallback_range_m=120+fallback:centroid",
            database=square_db)
        assert chain.primary.fallback_range_m == 120

    def test_chain_answers_through_fallback(self, square_db):
        chain = make_localizer("m-loc+fallback:centroid",
                               database=square_db)
        observed = [record.bssid for record in square_db]
        estimate = chain.locate(observed)
        assert estimate is not None
        assert chain.last_tier == "m-loc"

    def test_empty_chain_rejected(self, square_db):
        with pytest.raises(ValueError, match="empty fallback"):
            make_localizer("m-loc+fallback:", database=square_db)
