"""Theorem 3 tests: over/underestimated radii."""

import math

import numpy as np
import pytest

from repro.theory.theorem2 import expected_intersected_area
from repro.theory.theorem3 import (
    coverage_probability_underestimate,
    expected_area_overestimate,
    lens_area_c12,
    monte_carlo_overestimate,
)


class TestLensAreaC12:
    def test_full_containment(self):
        assert lens_area_c12(0.0, 1.0, 2.0) == pytest.approx(math.pi)

    def test_disjoint(self):
        assert lens_area_c12(3.5, 1.0, 2.0) == 0.0

    def test_equal_radii_matches_lens_formula(self):
        from repro.geometry.circle import Circle, lens_area
        from repro.geometry.point import Point

        for x in (0.5, 1.0, 1.5):
            ours = lens_area_c12(x, 1.0, 1.0)
            reference = lens_area(Circle(Point(0, 0), 1.0),
                                  Circle(Point(x, 0), 1.0))
            assert ours == pytest.approx(reference, rel=1e-9)

    def test_continuous_at_containment_boundary(self):
        just_inside = lens_area_c12(0.999, 1.0, 2.0)
        just_outside = lens_area_c12(1.001, 1.0, 2.0)
        assert just_inside == pytest.approx(math.pi, rel=1e-3)
        assert just_outside == pytest.approx(math.pi, rel=1e-3)

    def test_negative_distance(self):
        with pytest.raises(ValueError):
            lens_area_c12(-1.0, 1.0, 2.0)


class TestOverestimate:
    def test_r_equal_reduces_to_theorem2(self):
        for k in (2, 5, 10):
            thm3 = expected_area_overestimate(k, 1.0, 1.0)
            thm2 = expected_intersected_area(k, 1.0)
            assert thm3 == pytest.approx(thm2, rel=1e-6)

    def test_fig5_monotone_increasing_in_R(self):
        values = [expected_area_overestimate(10, 1.0, big_r)
                  for big_r in (1.0, 1.2, 1.4, 1.6, 1.8, 2.0)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_grows_rapidly(self):
        # "when r' > r, the expected size of the intersected area grows
        # rapidly with r'."
        assert (expected_area_overestimate(10, 1.0, 2.0)
                > 5.0 * expected_area_overestimate(10, 1.0, 1.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_area_overestimate(0, 1.0, 1.5)
        with pytest.raises(ValueError):
            expected_area_overestimate(5, 1.0, 0.9)  # R < r

    @pytest.mark.parametrize("big_r", [1.2, 1.5])
    def test_matches_monte_carlo(self, big_r):
        k = 6
        closed_form = expected_area_overestimate(k, 1.0, big_r)
        rng = np.random.default_rng(17)
        mc, stderr, coverage = monte_carlo_overestimate(k, 1.0, big_r,
                                                        rng, trials=400)
        assert abs(closed_form - mc) < max(4.0 * stderr,
                                           0.05 * closed_form)
        # R >= r: the region always covers the true location.
        assert coverage == 1.0


class TestUnderestimate:
    def test_eq35_formula(self):
        assert coverage_probability_underestimate(10, 1.0, 0.9) == \
            pytest.approx(0.9 ** 20)

    def test_r_equal_gives_one(self):
        assert coverage_probability_underestimate(5, 1.0, 1.0) == 1.0

    def test_fig6_collapse_with_k(self):
        # "the probability ... quickly becomes extremely small when k
        # is large."
        p_small_k = coverage_probability_underestimate(2, 1.0, 0.8)
        p_large_k = coverage_probability_underestimate(20, 1.0, 0.8)
        assert p_large_k < 0.001
        assert p_large_k < p_small_k

    def test_monotone_in_R(self):
        values = [coverage_probability_underestimate(10, 1.0, big_r)
                  for big_r in (0.5, 0.7, 0.9, 1.0)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            coverage_probability_underestimate(0, 1.0, 0.5)
        with pytest.raises(ValueError):
            coverage_probability_underestimate(5, 1.0, 1.5)  # R > r
        with pytest.raises(ValueError):
            coverage_probability_underestimate(5, 1.0, 0.0)

    def test_matches_monte_carlo(self):
        k, big_r = 4, 0.85
        expected = coverage_probability_underestimate(k, 1.0, big_r)
        rng = np.random.default_rng(23)
        _, _, coverage = monte_carlo_overestimate(k, 1.0, big_r, rng,
                                                  trials=3000)
        assert coverage == pytest.approx(expected, abs=0.04)

    def test_overestimate_preferred_tradeoff(self):
        """The paper's design conclusion: a 20% overestimate costs area
        but keeps coverage at 1; a 20% underestimate destroys coverage."""
        over_area = expected_area_overestimate(10, 1.0, 1.2)
        exact_area = expected_area_overestimate(10, 1.0, 1.0)
        under_coverage = coverage_probability_underestimate(10, 1.0, 0.8)
        assert over_area < 6.0 * exact_area  # bounded area cost
        assert under_coverage < 0.02         # catastrophic coverage loss
