"""Confidence-radius (CEP) tests on localization estimates."""

import math

import pytest

from repro.knowledge.apdb import ApDatabase
from repro.localization.centroid import CentroidLocalizer
from repro.localization.mloc import MLoc

from tests.helpers import make_record


class TestConfidenceRadius:
    def test_single_disc_cep(self):
        """For a uniform disc of radius R centered on the estimate,
        the fraction-q radius is R * sqrt(q)."""
        db = ApDatabase([make_record(0, 50.0, 50.0, 40.0)])
        estimate = MLoc(db).locate(db.bssids)
        cep50 = estimate.confidence_radius_m(0.5, samples=20000)
        assert cep50 == pytest.approx(40.0 * math.sqrt(0.5), rel=0.05)
        cep90 = estimate.confidence_radius_m(0.9, samples=20000)
        assert cep90 == pytest.approx(40.0 * math.sqrt(0.9), rel=0.05)

    def test_monotone_in_fraction(self, square_db):
        estimate = MLoc(square_db).locate(square_db.bssids)
        values = [estimate.confidence_radius_m(f, samples=8000)
                  for f in (0.25, 0.5, 0.75, 0.95)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_bounded_by_region_extent(self, square_db):
        estimate = MLoc(square_db).locate(square_db.bssids)
        min_x, min_y, max_x, max_y = estimate.region.bounding_box()
        diagonal = math.hypot(max_x - min_x, max_y - min_y)
        assert estimate.confidence_radius_m(1.0) <= diagonal

    def test_deterministic(self, square_db):
        estimate = MLoc(square_db).locate(square_db.bssids)
        assert estimate.confidence_radius_m(0.5, seed=3) == \
            estimate.confidence_radius_m(0.5, seed=3)

    def test_none_for_centroid(self, square_db):
        estimate = CentroidLocalizer(square_db).locate(square_db.bssids)
        assert estimate.confidence_radius_m() is None

    def test_none_for_empty_region(self):
        db = ApDatabase([make_record(0, 0.0, 0.0, 40.0),
                         make_record(1, 100.0, 0.0, 40.0)])
        estimate = MLoc(db).locate(db.bssids)
        assert estimate.region_empty
        assert estimate.confidence_radius_m() is None

    def test_validation(self, square_db):
        estimate = MLoc(square_db).locate(square_db.bssids)
        with pytest.raises(ValueError):
            estimate.confidence_radius_m(0.0)
        with pytest.raises(ValueError):
            estimate.confidence_radius_m(1.5)

    def test_smaller_region_smaller_cep(self, square_db):
        many = MLoc(square_db).locate(square_db.bssids)
        one = MLoc(square_db).locate(square_db.bssids[:1])
        assert (many.confidence_radius_m(0.5)
                < one.confidence_radius_m(0.5))
