"""Engine re-fit scheduling: streaming AP-Rad inside the pipeline.

With ``refit_every > 0`` the engine snapshots each evidence Γ and, on
schedule, hands the batch to ``localizer.partial_fit`` — the AP-Rad
radii then track the accumulating corpus instead of staying frozen at
whatever the knowledge base shipped with.
"""

import json

import pytest

from repro.engine import LatestFixSink, StreamingEngine
from repro.localization import APRad, MLoc
from repro.net80211.frames import probe_response
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid


def station(index):
    return MacAddress(0x020000000000 + index)


def received(frame):
    return ReceivedFrame(frame, rssi_dbm=-70.0, snr_db=20.0,
                         rx_channel=6, rx_timestamp=frame.timestamp)


def evidence_stream(square_db, devices=6, rounds=2):
    """Each device hears all four square APs, several rounds."""
    frames = []
    t = 0.0
    for _ in range(rounds):
        for d in range(devices):
            for record in square_db:
                t += 0.01
                frames.append(received(probe_response(
                    record.bssid, station(d), 6, t, ssid=record.ssid)))
            t += 0.5
    return frames


def streaming_aprad(square_db):
    return APRad(square_db, r_max=80.0, solver="revised",
                 min_evidence=1, tie_break=1e-7)


class TestRefitScheduling:
    def test_refits_happen_and_are_timed(self, square_db):
        engine = StreamingEngine(streaming_aprad(square_db),
                                 window_s=30.0, batch_size=4,
                                 refit_every=8)
        stats = engine.run(iter(evidence_stream(square_db)))
        assert stats.refits > 0
        assert stats.stage_seconds.get("fit", 0.0) > 0.0
        # The last solve may be a zero-pivot warm restart; the counter
        # just has to be wired through.
        assert stats.last_fit_iterations >= 0
        assert engine.localizer.last_fit.solver_iterations >= 0
        # Once fitted, the located devices flow as usual.
        assert stats.estimates_emitted > 0
        assert "re-fits" in stats.format()
        assert stats.to_dict()["fit_seconds"] == pytest.approx(
            stats.stage_seconds["fit"])

    def test_refit_interval_respected(self, square_db):
        frames = evidence_stream(square_db, devices=6, rounds=2)
        engine = StreamingEngine(streaming_aprad(square_db),
                                 window_s=30.0, batch_size=4,
                                 refit_every=16)
        stats = engine.run(iter(frames))
        # Every frame is evidence: one refit per 16 events, plus the
        # end-of-stream catch-up for the remainder.
        expected = stats.evidence_events // 16
        remainder = stats.evidence_events % 16
        assert stats.refits == expected + (1 if remainder else 0)

    def test_unfitted_localizer_blocks_estimates(self, square_db):
        # Below the refit threshold nothing ever fits: every flush
        # must come back empty instead of crashing in locate().
        frames = evidence_stream(square_db, devices=1, rounds=1)[:3]
        engine = StreamingEngine(streaming_aprad(square_db),
                                 window_s=30.0, batch_size=2,
                                 refit_every=1000)
        engine.ingest_stream(frames)
        assert engine.flush() == 0
        assert not engine.localizer.is_fitted
        # run() performs the catch-up fit, after which devices locate.
        stats = engine.run(iter([]))
        assert stats.refits == 1
        assert stats.estimates_emitted > 0

    def test_default_engine_never_refits(self, square_db):
        engine = StreamingEngine(MLoc(square_db), window_s=30.0,
                                 batch_size=4)
        stats = engine.run(iter(evidence_stream(square_db)))
        assert stats.refits == 0
        assert "fit" not in stats.stage_seconds
        assert "re-fits" not in stats.format()

    def test_mloc_with_refit_schedule_is_harmless(self, square_db):
        # MLoc has no partial_fit: the schedule fires but no-ops.
        engine = StreamingEngine(MLoc(square_db), window_s=30.0,
                                 batch_size=4, refit_every=4)
        stats = engine.run(iter(evidence_stream(square_db)))
        assert stats.refits == 0
        assert stats.estimates_emitted > 0

    def test_validation(self, square_db):
        with pytest.raises(ValueError):
            StreamingEngine(MLoc(square_db), refit_every=-1)


class TestRefitEstimates:
    def test_estimates_use_fitted_radii(self, square_db):
        sink = LatestFixSink()
        engine = StreamingEngine(streaming_aprad(square_db),
                                 window_s=30.0, batch_size=4,
                                 refit_every=8, sinks=[sink])
        engine.run(iter(evidence_stream(square_db)))
        fixes = sink.estimates()
        assert fixes
        for estimate in fixes.values():
            assert estimate.algorithm == "ap-rad"
            # All four APs around the square cover the center.
            assert estimate.position.x == pytest.approx(50.0, abs=30.0)
            assert estimate.position.y == pytest.approx(50.0, abs=30.0)


class TestCheckpoint:
    def test_refit_state_round_trips(self, square_db):
        frames = evidence_stream(square_db)
        engine = StreamingEngine(streaming_aprad(square_db),
                                 window_s=30.0, batch_size=4,
                                 refit_every=7)
        engine.ingest_stream(frames[:11])
        blob = json.dumps(engine.checkpoint())

        data = json.loads(blob)
        assert data["config"]["refit_every"] == 7
        assert data["counters"]["refits"] == engine.stats().refits
        assert (len(data["refit"]["pending"])
                == len(engine._pending_refit))

        resumed = StreamingEngine.restore(data,
                                          streaming_aprad(square_db))
        assert resumed.refit_every == 7
        assert resumed._events_since_refit == engine._events_since_refit
        assert resumed._pending_refit == engine._pending_refit
        assert resumed.stats().refits == engine.stats().refits

    def test_old_checkpoints_still_restore(self, square_db):
        # A checkpoint written before re-fit scheduling existed has
        # neither the config key nor the refit block.
        engine = StreamingEngine(MLoc(square_db), window_s=30.0,
                                 batch_size=4)
        engine.ingest_stream(evidence_stream(square_db)[:5])
        data = engine.checkpoint()
        data["config"].pop("refit_every", None)
        data["counters"].pop("refits", None)
        data["counters"].pop("last_fit_iterations", None)
        data.pop("refit", None)
        resumed = StreamingEngine.restore(json.loads(json.dumps(data)),
                                          MLoc(square_db))
        assert resumed.refit_every == 0
        assert resumed.stats().refits == 0
