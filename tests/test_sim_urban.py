"""Urban (GWU-style) scenario tests."""

import pytest

from repro.localization import MLoc
from repro.sim import build_attack_scenario, build_urban_scenario


@pytest.fixture(scope="module")
def urban():
    scenario = build_urban_scenario(seed=38, ap_count=70, area_m=400.0,
                                    bystander_count=4)
    scenario.world.run(duration_s=180.0)
    return scenario


class TestUrbanScenario:
    def test_attack_still_works_among_buildings(self, urban):
        store = urban.world.sniffer.store
        gamma = store.gamma(urban.victim.mac)
        assert gamma
        estimate = MLoc(urban.truth_db).locate(gamma)
        error = estimate.error_to(urban.victim.position)
        # The disc model is the worst case: localization degrades but
        # stays campus-scale (the paper's core point vs RSSI methods).
        assert error < 150.0

    def test_observed_gamma_subset_of_disc_model(self, urban):
        """Theorem 1's worst-case property end to end: the sniffer can
        only ever see a *subset* of the disc-model communicable set, so
        the intersected region never excludes the truth."""
        store = urban.world.sniffer.store
        for mobile, gamma in store.all_observations().items():
            # Check against the union of disc predictions along the
            # device's whole trajectory.
            union = set()
            for truth in urban.world.truths:
                if truth.mobile == mobile:
                    union |= urban.world.true_gamma(truth.position)
            assert gamma <= union

    def test_buildings_reduce_captures(self):
        """Urban blockage costs the sniffer frames vs. the open campus."""
        urban_scenario = build_urban_scenario(seed=5, ap_count=60,
                                              area_m=400.0,
                                              bystander_count=3)
        urban_scenario.world.run(duration_s=120.0)
        open_scenario = build_attack_scenario(seed=5, ap_count=60,
                                              area_m=400.0,
                                              bystander_count=3)
        open_scenario.world.run(duration_s=120.0)
        assert (urban_scenario.world.sniffer.store.frame_count
                < open_scenario.world.sniffer.store.frame_count)

    def test_victim_walks_the_streets(self, urban):
        # The route stays outside every building footprint.
        from repro.sim.terrain import Building

        block, street = 70.0, 30.0
        pitch = block + street
        for t in range(0, 180, 10):
            position = urban.victim_route.position_at(float(t))
            # In-street means x or y is within a street band.
            def in_street(v):
                offset = v % pitch
                return offset <= street
            assert in_street(position.x) or in_street(position.y)
