"""Management-frame construction tests."""

import numpy as np
import pytest

from repro.net80211.frames import (
    FrameType,
    beacon,
    deauthentication,
    probe_request,
    probe_response,
)
from repro.net80211.mac import BROADCAST_MAC, MacAddress
from repro.net80211.ssid import Ssid

STA = MacAddress.parse("00:1b:63:11:22:33")
AP = MacAddress.parse("00:15:6d:44:55:66")


class TestProbeRequest:
    def test_broadcast_probe(self):
        frame = probe_request(STA, channel=6, timestamp=1.5)
        assert frame.frame_type is FrameType.PROBE_REQUEST
        assert frame.is_probe_request
        assert frame.destination == BROADCAST_MAC
        assert frame.ssid.is_wildcard
        assert frame.bssid is None
        assert not frame.is_from_ap

    def test_directed_probe_leaks_ssid(self):
        frame = probe_request(STA, channel=6, timestamp=0.0,
                              ssid=Ssid("home-wifi"))
        assert frame.ssid == Ssid("home-wifi")


class TestProbeResponse:
    def test_fields(self):
        frame = probe_response(AP, STA, channel=6, timestamp=2.0,
                               ssid=Ssid("CampusNet"))
        assert frame.frame_type is FrameType.PROBE_RESPONSE
        assert frame.source == AP
        assert frame.destination == STA
        assert frame.bssid == AP
        assert frame.is_from_ap
        assert frame.frame_type.is_probe_traffic


class TestBeacon:
    def test_fields(self):
        frame = beacon(AP, channel=11, timestamp=3.0, ssid=Ssid("net"))
        assert frame.frame_type is FrameType.BEACON
        assert frame.destination == BROADCAST_MAC
        assert frame.bssid == AP
        assert frame.is_from_ap
        assert not frame.frame_type.is_probe_traffic


class TestDeauthentication:
    def test_spoofed_deauth(self):
        frame = deauthentication(source=AP, destination=STA, bssid=AP,
                                 channel=6, timestamp=4.0, reason_code=7)
        assert frame.frame_type is FrameType.DEAUTHENTICATION
        assert frame.elements["reason_code"] == "7"
        assert frame.source == AP  # forged identity

    def test_frozen(self):
        frame = probe_request(STA, channel=1, timestamp=0.0)
        with pytest.raises(AttributeError):
            frame.channel = 6
