"""MAC-address tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.net80211.mac import BROADCAST_MAC, MacAddress


class TestParsing:
    def test_parse_colon(self):
        mac = MacAddress.parse("00:1b:63:aa:bb:cc")
        assert str(mac) == "00:1b:63:aa:bb:cc"

    def test_parse_dash(self):
        assert str(MacAddress.parse("00-1b-63-aa-bb-cc")) == \
            "00:1b:63:aa:bb:cc"

    def test_parse_uppercase(self):
        assert str(MacAddress.parse("00:1B:63:AA:BB:CC")) == \
            "00:1b:63:aa:bb:cc"

    def test_invalid_strings(self):
        for bad in ("", "00:1b:63", "00:1b:63:aa:bb:cc:dd",
                    "gg:1b:63:aa:bb:cc", "001b63aabbcc"):
            with pytest.raises(ValueError):
                MacAddress.parse(bad)

    def test_out_of_range_value(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)
        with pytest.raises(ValueError):
            MacAddress(-1)

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_str_parse_roundtrip(self, value):
        mac = MacAddress(value)
        assert MacAddress.parse(str(mac)) == mac


class TestProperties:
    def test_broadcast(self):
        assert BROADCAST_MAC.is_broadcast
        assert BROADCAST_MAC.is_multicast
        assert str(BROADCAST_MAC) == "ff:ff:ff:ff:ff:ff"

    def test_oui_and_vendor(self):
        mac = MacAddress.parse("00:1b:63:12:34:56")
        assert mac.oui == "00:1b:63"
        assert mac.vendor == "Apple"

    def test_unknown_vendor(self):
        assert MacAddress.parse("f2:00:00:00:00:01").vendor is None

    def test_locally_administered_bit(self):
        assert MacAddress.parse("02:00:00:00:00:01").is_locally_administered
        assert not MacAddress.parse("00:1b:63:00:00:01").is_locally_administered

    def test_multicast_bit(self):
        assert MacAddress.parse("01:00:5e:00:00:01").is_multicast
        assert not MacAddress.parse("00:1b:63:00:00:01").is_multicast

    def test_ordering_and_hashing(self):
        a = MacAddress(1)
        b = MacAddress(2)
        assert a < b
        assert len({a, b, MacAddress(1)}) == 2


class TestRandomGeneration:
    def test_random_is_unicast_global(self):
        rng = np.random.default_rng(3)
        for _ in range(32):
            mac = MacAddress.random(rng)
            assert not mac.is_multicast
            assert not mac.is_locally_administered

    def test_random_with_oui(self):
        rng = np.random.default_rng(3)
        mac = MacAddress.random(rng, oui="00:15:6d")
        assert mac.oui == "00:15:6d"
        assert mac.vendor == "Ubiquiti"

    def test_pseudonym_is_local_unicast(self):
        rng = np.random.default_rng(3)
        for _ in range(32):
            mac = MacAddress.random_pseudonym(rng)
            assert mac.is_locally_administered
            assert not mac.is_multicast

    def test_deterministic(self):
        assert (MacAddress.random(np.random.default_rng(9))
                == MacAddress.random(np.random.default_rng(9)))
