"""DiscIntersection tests: the geometric heart of the attack.

The exact arc-polygon area/centroid is validated against closed-form
lens formulas and Monte-Carlo rejection sampling, including a hypothesis
sweep over random disc configurations.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.circle import Circle, lens_area
from repro.geometry.point import Point
from repro.geometry.region import DiscIntersection

coord = st.floats(min_value=-10.0, max_value=10.0,
                  allow_nan=False, allow_infinity=False)
radius = st.floats(min_value=0.5, max_value=8.0,
                   allow_nan=False, allow_infinity=False)


def disc_strategy():
    return st.builds(lambda x, y, r: Circle(Point(x, y), r),
                     coord, coord, radius)


class TestConstruction:
    def test_requires_discs(self):
        with pytest.raises(ValueError):
            DiscIntersection([])

    def test_single_disc(self):
        region = DiscIntersection([Circle(Point(3, 4), 2.0)])
        assert not region.is_empty
        assert region.area == pytest.approx(4 * math.pi)
        assert region.centroid() == Point(3, 4)
        assert region.vertices == []
        assert region.vertex_centroid() is None


class TestTwoDiscs:
    def test_lens_area_matches_formula(self):
        a = Circle(Point(0, 0), 1.0)
        b = Circle(Point(1.2, 0), 1.0)
        region = DiscIntersection([a, b])
        assert region.area == pytest.approx(lens_area(a, b), rel=1e-9)

    def test_lens_centroid_on_symmetry_axis(self):
        region = DiscIntersection([Circle(Point(0, 0), 1.0),
                                   Circle(Point(1, 0), 1.0)])
        centroid = region.centroid()
        assert centroid.x == pytest.approx(0.5)
        assert centroid.y == pytest.approx(0.0, abs=1e-9)

    def test_asymmetric_lens_centroid_vs_monte_carlo(self):
        region = DiscIntersection([Circle(Point(0, 0), 2.0),
                                   Circle(Point(1.5, 0.5), 1.0)])
        rng = np.random.default_rng(0)
        mc = region.monte_carlo_centroid(rng, samples=60000)
        exact = region.centroid()
        assert exact.x == pytest.approx(mc.x, abs=0.02)
        assert exact.y == pytest.approx(mc.y, abs=0.02)

    def test_disjoint_is_empty(self):
        region = DiscIntersection([Circle(Point(0, 0), 1.0),
                                   Circle(Point(5, 0), 1.0)])
        assert region.is_empty
        assert region.area == 0.0
        assert region.centroid() is None

    def test_nested_is_inner_disc(self):
        inner = Circle(Point(0.5, 0), 1.0)
        region = DiscIntersection([Circle(Point(0, 0), 5.0), inner])
        assert region.area == pytest.approx(inner.area)
        assert region.centroid() == inner.center

    def test_tangent_single_point(self):
        region = DiscIntersection([Circle(Point(0, 0), 1.0),
                                   Circle(Point(2, 0), 1.0)])
        assert not region.is_empty
        assert region.area == pytest.approx(0.0, abs=1e-6)
        centroid = region.centroid()
        assert centroid.x == pytest.approx(1.0, abs=1e-6)

    def test_major_arc_lens(self):
        # Small circle mostly inside the big one: its boundary arc on
        # the region exceeds pi.  Validated against the lens formula.
        a = Circle(Point(0, 0), 3.0)
        b = Circle(Point(2.9, 0), 1.0)
        region = DiscIntersection([a, b])
        assert region.area == pytest.approx(lens_area(a, b), rel=1e-9)


class TestManyDiscs:
    def test_three_disc_area_vs_monte_carlo(self):
        region = DiscIntersection([Circle(Point(0, 0), 1.0),
                                   Circle(Point(1, 0), 1.0),
                                   Circle(Point(0.5, 0.9), 1.0)])
        rng = np.random.default_rng(1)
        mc = region.monte_carlo_area(rng, samples=80000)
        assert region.area == pytest.approx(mc, rel=0.03)

    def test_adding_a_disc_never_grows_region(self):
        base = [Circle(Point(0, 0), 2.0), Circle(Point(1, 0), 2.0)]
        smaller = DiscIntersection(base + [Circle(Point(0.5, 1.0), 1.5)])
        assert smaller.area <= DiscIntersection(base).area + 1e-9

    def test_vertices_inside_all_discs(self):
        discs = [Circle(Point(0, 0), 1.5), Circle(Point(1, 0), 1.5),
                 Circle(Point(0.5, 1), 1.5)]
        region = DiscIntersection(discs)
        for vertex in region.vertices:
            for disc in discs:
                assert disc.contains(vertex, tol=1e-6)

    def test_centroid_inside_region(self):
        discs = [Circle(Point(0, 0), 2.0), Circle(Point(1.5, 0), 2.0),
                 Circle(Point(0.7, 1.2), 2.0)]
        region = DiscIntersection(discs)
        assert region.contains(region.centroid(), tol=1e-6)

    def test_vertex_centroid_is_vertex_mean(self):
        discs = [Circle(Point(0, 0), 1.0), Circle(Point(1, 0), 1.0)]
        region = DiscIntersection(discs)
        vertices = region.vertices
        mean = region.vertex_centroid()
        assert mean.x == pytest.approx(
            sum(v.x for v in vertices) / len(vertices))

    def test_contains_respects_all_discs(self):
        region = DiscIntersection([Circle(Point(0, 0), 1.0),
                                   Circle(Point(1, 0), 1.0)])
        assert region.contains(Point(0.5, 0.0))
        assert not region.contains(Point(-0.5, 0.0))  # only in disc A

    def test_bounding_box_contains_region(self):
        discs = [Circle(Point(0, 0), 2.0), Circle(Point(2, 1), 2.0)]
        region = DiscIntersection(discs)
        min_x, min_y, max_x, max_y = region.bounding_box()
        for vertex in region.vertices:
            assert min_x - 1e-9 <= vertex.x <= max_x + 1e-9
            assert min_y - 1e-9 <= vertex.y <= max_y + 1e-9


class TestRegionProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(disc_strategy(), min_size=2, max_size=5))
    def test_exact_area_matches_monte_carlo(self, discs):
        region = DiscIntersection(discs)
        rng = np.random.default_rng(7)
        mc = region.monte_carlo_area(rng, samples=40000)
        exact = region.area
        scale = max(exact, mc, 0.05)
        # MC with 40k samples: allow a few percent plus a floor for
        # sliver regions where relative error is meaningless.
        assert abs(exact - mc) <= 0.08 * scale + 0.02

    @settings(max_examples=40, deadline=None)
    @given(st.lists(disc_strategy(), min_size=1, max_size=5))
    def test_area_no_larger_than_smallest_disc(self, discs):
        region = DiscIntersection(discs)
        assert region.area <= min(d.area for d in discs) + 1e-6

    @settings(max_examples=40, deadline=None)
    @given(st.lists(disc_strategy(), min_size=1, max_size=5))
    def test_centroid_inside_when_nonempty(self, discs):
        region = DiscIntersection(discs)
        if region.is_empty:
            assert region.centroid() is None
        else:
            centroid = region.centroid()
            # Allow tolerance proportional to the disc scale: sliver
            # regions have centroids right on the boundary.
            tol = 1e-4 * max(d.radius for d in discs)
            assert region.contains(centroid, tol=max(tol, 1e-6))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(disc_strategy(), min_size=2, max_size=4))
    def test_vertex_centroid_none_iff_no_vertices(self, discs):
        region = DiscIntersection(discs)
        if region.vertices:
            assert region.vertex_centroid() is not None
        else:
            assert region.vertex_centroid() is None
