"""Capture-file (JSONL pcap stand-in) round-trip tests."""

import json

import pytest

from repro.net80211.capture_file import (
    CaptureReader,
    CaptureWriter,
    frame_from_dict,
    frame_to_dict,
)
from repro.net80211.frames import (
    FrameType,
    beacon,
    deauthentication,
    probe_request,
    probe_response,
)
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid

STA = MacAddress.parse("00:1b:63:11:22:33")
AP = MacAddress.parse("00:15:6d:44:55:66")


def sample_frames():
    return [
        probe_request(STA, channel=6, timestamp=1.0, ssid=Ssid("home")),
        probe_response(AP, STA, channel=6, timestamp=1.1,
                       ssid=Ssid("CampusNet")),
        beacon(AP, channel=11, timestamp=2.0, ssid=Ssid("CampusNet")),
        deauthentication(AP, STA, AP, channel=6, timestamp=3.0),
    ]


class TestFrameSerialization:
    @pytest.mark.parametrize("frame", sample_frames(),
                             ids=lambda f: f.frame_type.value)
    def test_roundtrip(self, frame):
        assert frame_from_dict(frame_to_dict(frame)) == frame

    def test_dict_is_json_compatible(self):
        for frame in sample_frames():
            json.dumps(frame_to_dict(frame))


class TestCaptureFile:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "capture.jsonl"
        records = [
            ReceivedFrame(frame=frame, rssi_dbm=-70.0 - i, snr_db=20.0,
                          rx_channel=frame.channel,
                          rx_timestamp=frame.timestamp)
            for i, frame in enumerate(sample_frames())
        ]
        with CaptureWriter(path) as writer:
            for record in records:
                writer.write(record)
        recovered = list(CaptureReader(path))
        assert recovered == records

    def test_header_written_once(self, tmp_path):
        path = tmp_path / "capture.jsonl"
        with CaptureWriter(path) as writer:
            writer.write(ReceivedFrame(sample_frames()[0], -70.0, 20.0,
                                       6, 1.0))
        with CaptureWriter(path) as writer:  # append session
            writer.write(ReceivedFrame(sample_frames()[1], -71.0, 19.0,
                                       6, 1.1))
        lines = path.read_text().strip().splitlines()
        headers = [line for line in lines if "capture_format" in line]
        assert len(headers) == 1
        assert len(list(CaptureReader(path))) == 2

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "capture.jsonl"
        path.write_text('{"capture_format": 99}\n')
        with pytest.raises(ValueError, match="unsupported"):
            list(CaptureReader(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "capture.jsonl"
        with CaptureWriter(path) as writer:
            writer.write(ReceivedFrame(sample_frames()[0], -70.0, 20.0,
                                       6, 1.0))
        path.write_text(path.read_text() + "\n\n")
        assert len(list(CaptureReader(path))) == 1
