"""Mobility-model tests."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.sim.mobility import FixedRoute, RandomWaypoint, grid_route


class TestFixedRoute:
    def test_start_and_end(self):
        route = FixedRoute([Point(0, 0), Point(100, 0)], speed_m_s=2.0)
        assert route.position_at(0.0) == Point(0, 0)
        assert route.position_at(1e9) == Point(100, 0)

    def test_length_and_duration(self):
        route = FixedRoute([Point(0, 0), Point(100, 0), Point(100, 50)],
                           speed_m_s=2.0)
        assert route.length_m == pytest.approx(150.0)
        assert route.duration_s == pytest.approx(75.0)

    def test_constant_speed_interpolation(self):
        route = FixedRoute([Point(0, 0), Point(100, 0)], speed_m_s=2.0)
        assert route.position_at(25.0) == Point(50.0, 0.0)

    def test_crosses_waypoints(self):
        route = FixedRoute([Point(0, 0), Point(10, 0), Point(10, 10)],
                           speed_m_s=1.0)
        assert route.position_at(10.0) == Point(10.0, 0.0)
        assert route.position_at(15.0) == Point(10.0, 5.0)

    def test_single_waypoint_is_stationary(self):
        route = FixedRoute([Point(5, 5)])
        assert route.position_at(100.0) == Point(5, 5)

    def test_duplicate_waypoints_handled(self):
        route = FixedRoute([Point(0, 0), Point(0, 0), Point(10, 0)],
                           speed_m_s=1.0)
        assert route.position_at(5.0) == Point(5.0, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedRoute([])
        with pytest.raises(ValueError):
            FixedRoute([Point(0, 0)], speed_m_s=0.0)


class TestRandomWaypoint:
    def make_walker(self, seed=0):
        return RandomWaypoint(0.0, 0.0, 100.0, 100.0,
                              np.random.default_rng(seed),
                              speed_m_s=2.0, pause_s=1.0)

    def test_stays_in_bounds(self):
        walker = self.make_walker()
        for _ in range(500):
            position = walker.step(1.0)
            assert 0.0 <= position.x <= 100.0
            assert 0.0 <= position.y <= 100.0

    def test_speed_limit(self):
        walker = self.make_walker()
        previous = walker.position
        for _ in range(200):
            current = walker.step(1.0)
            assert previous.distance_to(current) <= 2.0 + 1e-9
            previous = current

    def test_deterministic_given_seed(self):
        a = self.make_walker(seed=7)
        b = self.make_walker(seed=7)
        for _ in range(50):
            assert a.step(1.0) == b.step(1.0)

    def test_actually_moves(self):
        walker = self.make_walker()
        start = walker.position
        for _ in range(100):
            walker.step(1.0)
        assert walker.position.distance_to(start) > 0.0

    def test_zero_dt_is_noop(self):
        walker = self.make_walker()
        position = walker.position
        assert walker.step(0.0) == position

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWaypoint(0.0, 0.0, 0.0, 100.0, np.random.default_rng(0))
        walker = self.make_walker()
        with pytest.raises(ValueError):
            walker.step(-1.0)


class TestGridRoute:
    def test_point_count(self):
        route = grid_route(0, 0, 100, 100, rows=4, points_per_row=5)
        assert len(route) == 20

    def test_covers_corners(self):
        route = grid_route(0, 0, 100, 100, rows=3, points_per_row=3)
        assert Point(0.0, 0.0) in route
        assert Point(100.0, 100.0) in route

    def test_boustrophedon_alternates(self):
        route = grid_route(0, 0, 100, 100, rows=2, points_per_row=3)
        first_row = route[:3]
        second_row = route[3:]
        assert [p.x for p in first_row] == [0.0, 50.0, 100.0]
        assert [p.x for p in second_row] == [100.0, 50.0, 0.0]

    def test_within_bounds(self):
        route = grid_route(10, 20, 90, 80, rows=5, points_per_row=7)
        for point in route:
            assert 10 <= point.x <= 90
            assert 20 <= point.y <= 80

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_route(0, 0, 1, 1, rows=0, points_per_row=5)
        with pytest.raises(ValueError):
            grid_route(0, 0, 1, 1, rows=2, points_per_row=1)
