"""SSID and preferred-network-fingerprint tests."""

import pytest

from repro.net80211.ssid import MAX_SSID_BYTES, Ssid, WILDCARD_SSID


class TestSsid:
    def test_wildcard(self):
        assert WILDCARD_SSID.is_wildcard
        assert str(WILDCARD_SSID) == "<broadcast>"

    def test_named(self):
        ssid = Ssid("CampusNet")
        assert not ssid.is_wildcard
        assert str(ssid) == "CampusNet"

    def test_max_length_boundary(self):
        Ssid("a" * MAX_SSID_BYTES)  # exactly 32 bytes: fine
        with pytest.raises(ValueError):
            Ssid("a" * (MAX_SSID_BYTES + 1))

    def test_utf8_length_counts_bytes(self):
        # 11 snowmen are 33 UTF-8 bytes.
        with pytest.raises(ValueError):
            Ssid("☃" * 11)
        Ssid("☃" * 10)

    def test_ordering_and_equality(self):
        assert Ssid("a") < Ssid("b")
        assert Ssid("x") == Ssid("x")


class TestFingerprint:
    def test_order_insensitive(self):
        a = Ssid.fingerprint([Ssid("home"), Ssid("work")])
        b = Ssid.fingerprint([Ssid("work"), Ssid("home")])
        assert a == b

    def test_wildcards_ignored(self):
        with_wildcard = Ssid.fingerprint([Ssid("home"), WILDCARD_SSID])
        without = Ssid.fingerprint([Ssid("home")])
        assert with_wildcard == without

    def test_different_lists_differ(self):
        assert Ssid.fingerprint([Ssid("home")]) != \
            Ssid.fingerprint([Ssid("work")])

    def test_duplicates_collapse(self):
        once = Ssid.fingerprint([Ssid("home")])
        twice = Ssid.fingerprint([Ssid("home"), Ssid("home")])
        assert once == twice

    def test_stable_format(self):
        fingerprint = Ssid.fingerprint([Ssid("home")])
        assert len(fingerprint) == 16
        int(fingerprint, 16)  # hex digest prefix
