"""`marauder engine` CLI tests: end-to-end run, resume, clean failures."""

import re

import pytest

from repro.cli import main
from repro.geo.enu import LocalTangentPlane
from repro.geo.wgs84 import GeodeticCoordinate
from repro.knowledge.wigle import export_wigle_csv
from repro.net80211.capture_file import CaptureWriter
from repro.sim import build_attack_scenario

ORIGIN = GeodeticCoordinate(42.6555, -71.3262)


@pytest.fixture(scope="module")
def sim_capture(tmp_path_factory):
    """A simulated campus capture + matching WiGLE knowledge."""
    tmp_path = tmp_path_factory.mktemp("engine_cli")
    scenario = build_attack_scenario(seed=6, ap_count=40, area_m=350.0,
                                     bystander_count=4)
    scenario.world.sniffer.keep_frames = True
    scenario.world.run(duration_s=120.0)

    capture_path = tmp_path / "capture.jsonl"
    with CaptureWriter(capture_path) as writer:
        for received in scenario.world.sniffer.captured:
            writer.write(received)
    wigle_path = tmp_path / "wigle.csv"
    export_wigle_csv(scenario.truth_db, wigle_path,
                     LocalTangentPlane(ORIGIN))
    return scenario, capture_path, wigle_path


class TestEngineCommand:
    def test_streams_capture_and_prints_stats(self, sim_capture, capsys):
        scenario, capture_path, wigle_path = sim_capture
        code = main(["engine", str(capture_path),
                     "--wigle", str(wigle_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "PipelineStats" in out
        assert "frames ingested" in out
        assert "hit rate" in out
        assert "estimates/s" in out
        # The victim walked through the campus: it got localized.
        assert str(scenario.victim.mac) in out

    def test_no_cache_flag(self, sim_capture, capsys):
        _, capture_path, wigle_path = sim_capture
        code = main(["engine", str(capture_path),
                     "--wigle", str(wigle_path), "--no-cache"])
        assert code == 0
        assert "cache             : disabled" in capsys.readouterr().out

    def test_refit_every_reports_fit_time(self, sim_capture, capsys):
        scenario, capture_path, wigle_path = sim_capture
        code = main(["engine", str(capture_path),
                     "--wigle", str(wigle_path),
                     "--refit-every", "50", "--r-max", "120"])
        assert code == 0
        out = capsys.readouterr().out
        assert "re-fits" in out
        assert "fit time" in out
        # The streaming localizer is AP-Rad, not the M-Loc fallback.
        assert str(scenario.victim.mac) in out

    def test_checkpoint_then_resume(self, sim_capture, tmp_path, capsys):
        _, capture_path, wigle_path = sim_capture
        ckpt = tmp_path / "engine.ckpt.json"
        assert main(["engine", str(capture_path),
                     "--wigle", str(wigle_path),
                     "--checkpoint", str(ckpt)]) == 0
        assert ckpt.exists()
        capsys.readouterr()
        code = main(["engine", str(capture_path),
                     "--wigle", str(wigle_path),
                     "--resume", str(ckpt)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Resumed from" in out
        assert "PipelineStats" in out

    def test_resume_restores_refit_schedule(self, sim_capture, tmp_path,
                                            capsys):
        """Resuming without --refit-every must honor the checkpointed
        schedule — including choosing the AP-Rad localizer, so re-fits
        keep running instead of silently no-opping on M-Loc."""
        scenario, capture_path, wigle_path = sim_capture
        lines = capture_path.read_text().splitlines(keepends=True)
        half = len(lines) // 2
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        first.write_text("".join(lines[:half]))
        second.write_text("".join(lines[half:]))

        def refit_count(text):
            # stats line looks like "re-fits : 2 (last solve ...)"
            match = re.search(r"re-fits\s*:\s*(\d+)", text)
            assert match, text
            return int(match.group(1))

        ckpt = tmp_path / "refit.ckpt.json"
        assert main(["engine", str(first), "--wigle", str(wigle_path),
                     "--refit-every", "50", "--r-max", "120",
                     "--checkpoint", str(ckpt)]) == 0
        first_refits = refit_count(capsys.readouterr().out)
        assert first_refits > 0

        # Second half: no --refit-every on the command line.
        assert main(["engine", str(second), "--wigle", str(wigle_path),
                     "--resume", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "Resumed from" in out
        # The schedule kept firing on the second half's evidence.
        assert refit_count(out) > first_refits
        assert str(scenario.victim.mac) in out


class TestEngineObservability:
    def test_metrics_json_contains_acceptance_series(self, sim_capture,
                                                     tmp_path, capsys):
        import json

        _, capture_path, wigle_path = sim_capture
        out_path = tmp_path / "metrics.json"
        code = main(["engine", str(capture_path),
                     "--wigle", str(wigle_path),
                     "--refit-every", "50", "--r-max", "120",
                     "--localizer", "ap-rad:r_max=120,solver=revised",
                     "--metrics-json", str(out_path)])
        assert code == 0
        assert "Metrics snapshot written to" in capsys.readouterr().out
        snapshot = json.loads(out_path.read_text())
        assert "repro.engine.flush.duration" in snapshot["histograms"]
        for event in ("hit", "miss", "eviction"):
            assert f"repro.engine.cache.{event}" in snapshot["counters"]
        assert "repro.lp.revised.pivots" in snapshot["counters"]
        assert snapshot["counters"]["repro.sniffer.replay.frames"] > 0

    def test_trace_exports_chrome_json(self, sim_capture, tmp_path,
                                       capsys):
        import json

        _, capture_path, wigle_path = sim_capture
        trace_path = tmp_path / "trace.json"
        code = main(["engine", str(capture_path),
                     "--wigle", str(wigle_path),
                     "--trace", str(trace_path)])
        assert code == 0
        assert "spans) written to" in capsys.readouterr().out
        events = json.loads(trace_path.read_text())["traceEvents"]
        names = {event["name"] for event in events}
        assert "engine.flush" in names

    def test_localizer_spec_selects_algorithm(self, sim_capture, capsys):
        _, capture_path, wigle_path = sim_capture
        code = main(["engine", str(capture_path),
                     "--wigle", str(wigle_path),
                     "--localizer", "centroid"])
        assert code == 0
        assert "PipelineStats" in capsys.readouterr().out

    def test_bad_localizer_spec_fails_cleanly(self, sim_capture, capsys):
        _, capture_path, wigle_path = sim_capture
        code = main(["engine", str(capture_path),
                     "--wigle", str(wigle_path),
                     "--localizer", "triangulate"])
        assert code == 2
        assert "unknown localizer" in capsys.readouterr().err


class TestCleanFailures:
    def test_engine_missing_capture(self, sim_capture, tmp_path, capsys):
        _, _, wigle_path = sim_capture
        code = main(["engine", str(tmp_path / "nope.jsonl"),
                     "--wigle", str(wigle_path)])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "nope.jsonl" in err

    def test_engine_corrupt_capture(self, sim_capture, tmp_path, capsys):
        _, _, wigle_path = sim_capture
        bad = tmp_path / "corrupt.jsonl"
        bad.write_text('{"capture_format": 1}\nthis is not json\n')
        code = main(["engine", str(bad), "--wigle", str(wigle_path)])
        assert code == 2
        assert "corrupt capture" in capsys.readouterr().err

    def test_engine_missing_wigle(self, sim_capture, tmp_path, capsys):
        _, capture_path, _ = sim_capture
        code = main(["engine", str(capture_path),
                     "--wigle", str(tmp_path / "nope.csv")])
        assert code == 2
        assert "WiGLE" in capsys.readouterr().err

    def test_engine_corrupt_checkpoint(self, sim_capture, tmp_path,
                                       capsys):
        _, capture_path, wigle_path = sim_capture
        bad = tmp_path / "bad.ckpt.json"
        bad.write_text('{"engine_checkpoint": 99}')
        code = main(["engine", str(capture_path),
                     "--wigle", str(wigle_path),
                     "--resume", str(bad)])
        assert code == 2
        assert "checkpoint" in capsys.readouterr().err

    def test_replay_missing_capture(self, sim_capture, tmp_path, capsys):
        _, _, wigle_path = sim_capture
        code = main(["replay", str(tmp_path / "nope.jsonl"),
                     "--wigle", str(wigle_path)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_replay_corrupt_capture(self, sim_capture, tmp_path, capsys):
        _, _, wigle_path = sim_capture
        bad = tmp_path / "corrupt.jsonl"
        bad.write_text("}{ garbage\n")
        code = main(["replay", str(bad), "--wigle", str(wigle_path)])
        assert code == 2
        assert "corrupt capture" in capsys.readouterr().err


class TestColumnarCaptureCLI:
    @pytest.fixture(scope="class")
    def columnar_capture(self, sim_capture, tmp_path_factory):
        """The fixture capture converted to a columnar store via CLI."""
        _, capture_path, _ = sim_capture
        out = tmp_path_factory.mktemp("columnar") / "capture.cap"
        assert main(["capture", "convert", str(capture_path),
                     str(out), "--block-records", "256"]) == 0
        return out

    def test_capture_info(self, columnar_capture, capsys):
        assert main(["capture", "info", str(columnar_capture)]) == 0
        out = capsys.readouterr().out
        assert "columnar capture" in out
        assert "bloom" in out

    def test_capture_info_json(self, columnar_capture, capsys):
        import json

        assert main(["capture", "info", str(columnar_capture),
                     "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["format"] == "columnar"
        assert info["records"] > 0

    def test_engine_flag_and_sniffed_format(self, sim_capture,
                                            columnar_capture, capsys):
        """--capture with a columnar file needs no --format."""
        _, _, wigle_path = sim_capture
        code = main(["engine", "--capture", str(columnar_capture),
                     "--wigle", str(wigle_path)])
        assert code == 0
        assert "PipelineStats" in capsys.readouterr().out

    def test_engine_batch_replay_matches_record_replay(
            self, sim_capture, columnar_capture, capsys):
        scenario, _, wigle_path = sim_capture
        assert main(["engine", str(columnar_capture),
                     "--wigle", str(wigle_path)]) == 0
        record_out = capsys.readouterr().out
        assert main(["engine", str(columnar_capture),
                     "--wigle", str(wigle_path), "--batch-replay"]) == 0
        batch_out = capsys.readouterr().out
        assert str(scenario.victim.mac) in batch_out

        def stat(text, name):
            match = re.search(rf"{name}\s*:\s*(\d+)", text)
            assert match, text
            return int(match.group(1))

        for name in ("frames ingested", "estimates emitted",
                     "evidence events", "devices seen"):
            assert stat(record_out, name) == stat(batch_out, name)

    def test_engine_rejects_capture_given_twice(self, sim_capture,
                                                columnar_capture, capsys):
        _, capture_path, wigle_path = sim_capture
        code = main(["engine", str(capture_path),
                     "--capture", str(columnar_capture),
                     "--wigle", str(wigle_path)])
        assert code == 2
        assert "once" in capsys.readouterr().err

    def test_capture_compact_merges(self, sim_capture, columnar_capture,
                                    tmp_path, capsys):
        _, capture_path, _ = sim_capture
        merged = tmp_path / "merged.cap"
        code = main(["capture", "compact", str(capture_path),
                     str(columnar_capture), "--output", str(merged)])
        assert code == 0
        assert "Compacted 2 capture(s)" in capsys.readouterr().out
        assert main(["capture", "info", str(merged)]) == 0
        assert "globally sorted: True" in capsys.readouterr().out

    def test_capture_convert_missing_source(self, tmp_path, capsys):
        code = main(["capture", "convert", str(tmp_path / "nope.jsonl"),
                     str(tmp_path / "out.cap")])
        assert code == 2
        assert "error:" in capsys.readouterr().err
