"""Targeted active attack + association-learning tests."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.net80211.frames import Dot11Frame, FrameType
from repro.net80211.mac import MacAddress
from repro.net80211.medium import Medium, ReceivedFrame
from repro.net80211.station import PROFILES, MobileStation
from repro.radio.propagation import FreeSpaceModel
from repro.sim.world import CampusWorld
from repro.sniffer.active import ActiveAttacker
from repro.sniffer.observation import ObservationStore
from repro.sniffer.receiver import build_marauder_sniffer

from tests.test_sim_world import make_ap

STA = MacAddress.parse("00:1b:63:11:22:33")
AP = MacAddress.parse("00:15:6d:44:55:66")


class TestAssociationLearning:
    def test_data_frame_reveals_association(self):
        store = ObservationStore()
        data = Dot11Frame(frame_type=FrameType.DATA, source=STA,
                          destination=AP, channel=6, timestamp=1.0,
                          bssid=AP)
        store.ingest(ReceivedFrame(data, -70.0, 20.0, 6, 1.0))
        assert store.known_associations() == [(STA, AP, 6)]

    def test_latest_association_wins(self):
        store = ObservationStore()
        other = MacAddress.parse("00:15:6d:77:88:99")
        for bssid, t in ((AP, 1.0), (other, 2.0)):
            data = Dot11Frame(frame_type=FrameType.DATA, source=STA,
                              destination=bssid, channel=6, timestamp=t,
                              bssid=bssid)
            store.ingest(ReceivedFrame(data, -70.0, 20.0, 6, t))
        assert store.known_associations() == [(STA, other, 6)]

    def test_probe_traffic_reveals_no_association(self):
        from repro.net80211.frames import probe_request, probe_response
        from repro.net80211.ssid import Ssid

        store = ObservationStore()
        store.ingest(ReceivedFrame(probe_request(STA, 6, 1.0),
                                   -70.0, 20.0, 6, 1.0))
        store.ingest(ReceivedFrame(
            probe_response(AP, STA, 6, 1.1, Ssid("x")),
            -70.0, 20.0, 6, 1.1))
        assert store.known_associations() == []


class TestTargetedAttack:
    def make_world(self):
        aps = [make_ap(0, 100.0, 100.0), make_ap(1, 200.0, 100.0)]
        medium = Medium(FreeSpaceModel())
        sniffer = build_marauder_sniffer(Point(150.0, 150.0), medium)
        return CampusWorld(aps, medium, sniffer=sniffer, seed=0), aps

    def make_victim(self, ap, seed=3):
        station = MobileStation(
            mac=MacAddress.random(np.random.default_rng(seed)),
            position=Point(120.0, 100.0),
            profile=PROFILES["passive"],
            data_interval_s=5.0,
        )
        station.associate(ap.bssid, ap.channel)
        return station

    def test_targeted_deauth_flushes_data_only_device(self):
        world, aps = self.make_world()
        victim = self.make_victim(aps[0])
        world.add_station(victim)
        # Learning phase: data frames reveal the association.
        world.run(duration_s=10.0)
        assert victim.mac not in world.sniffer.store.probing_mobiles
        attacker = ActiveAttacker(position=Point(150.0, 150.0))
        world.arm_attacker(attacker, interval_s=20.0, targeted=True)
        world.run(duration_s=30.0)
        # The targeted deauth forced a probe burst.
        assert victim.mac in world.sniffer.store.probing_mobiles

    def test_targeted_mode_skips_broadcast_for_known_stations(self):
        world, aps = self.make_world()
        victim = self.make_victim(aps[0])
        world.add_station(victim)
        # Let the sniffer learn the association first, then arm.
        world.run(duration_s=10.0)
        assert world.sniffer.store.known_associations()
        attacker = ActiveAttacker(position=Point(150.0, 150.0))
        world.arm_attacker(attacker, interval_s=1000.0, targeted=True)
        before = attacker.frames_sent
        world._step(1.0, record_truth=False)
        # One targeted frame + one broadcast per AP were crafted.
        assert attacker.frames_sent == before + 1 + len(aps)

    def test_untargeted_mode_unchanged(self):
        world, aps = self.make_world()
        victim = self.make_victim(aps[0])
        world.add_station(victim)
        attacker = ActiveAttacker(position=Point(150.0, 150.0))
        world.arm_attacker(attacker, interval_s=20.0, targeted=False)
        world.run(duration_s=60.0)
        assert victim.mac in world.sniffer.store.probing_mobiles
