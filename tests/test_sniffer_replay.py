"""Capture-replay tests: the offline analyze-later workflow."""

import pytest

from repro.localization import MLoc
from repro.net80211.capture_file import CaptureWriter
from repro.net80211.frames import probe_request, probe_response
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid
from repro.sniffer.replay import iter_capture, replay_capture

from tests.helpers import make_record

STA = MacAddress.parse("00:1b:63:11:22:33")


def write_capture(path, square_db):
    """A capture: the station probes, all four square APs answer."""
    with CaptureWriter(path) as writer:
        writer.write(ReceivedFrame(
            probe_request(STA, 6, 1.0, ssid=Ssid("home")),
            rssi_dbm=-70.0, snr_db=20.0, rx_channel=6, rx_timestamp=1.0))
        for i, record in enumerate(square_db):
            frame = probe_response(record.bssid, STA, 6, 1.0 + 0.01 * i,
                                   ssid=record.ssid)
            writer.write(ReceivedFrame(frame, rssi_dbm=-72.0,
                                       snr_db=18.0, rx_channel=6,
                                       rx_timestamp=frame.timestamp))


class TestReplay:
    def test_rebuilds_observation_store(self, tmp_path, square_db):
        path = tmp_path / "capture.jsonl"
        write_capture(path, square_db)
        result = replay_capture(path)
        assert result.frames_replayed == 5
        assert STA in result.mobiles
        assert result.store.gamma(STA) == set(square_db.bssids)
        assert STA in result.store.probing_mobiles

    def test_localization_from_replay(self, tmp_path, square_db):
        path = tmp_path / "capture.jsonl"
        write_capture(path, square_db)
        result = replay_capture(path)
        estimates = result.locate_all(MLoc(square_db))
        assert STA in estimates
        estimate = estimates[STA]
        assert estimate is not None
        # All four square APs constrain the estimate to the center.
        assert estimate.position.distance_to(
            square_db.get(square_db.bssids[0]).location) > 1.0
        assert estimate.used_ap_count == 4

    def test_linker_fed_from_capture(self, tmp_path, square_db):
        path = tmp_path / "capture.jsonl"
        write_capture(path, square_db)
        result = replay_capture(path)
        # The directed probe leaked an SSID: a fingerprint exists.
        assert result.linker.fingerprint_of(STA) is not None

    def test_window_parameter(self, tmp_path, square_db):
        path = tmp_path / "capture.jsonl"
        write_capture(path, square_db)
        result = replay_capture(path, window_s=10.0)
        assert result.store.window_s == 10.0

    def test_empty_capture(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        with CaptureWriter(path):
            pass
        result = replay_capture(path)
        assert result.frames_replayed == 0
        assert result.mobiles == set()


class TestIterCapture:
    """The streaming (generator) replay path the engine ingests."""

    def write_shuffled(self, path, square_db, order):
        """Probe responses with rx timestamps written in ``order``."""
        records = list(square_db)
        with CaptureWriter(path) as writer:
            for position in order:
                record = records[position % len(records)]
                t = float(position)
                frame = probe_response(record.bssid, STA, 6, t,
                                       ssid=record.ssid)
                writer.write(ReceivedFrame(frame, rssi_dbm=-72.0,
                                           snr_db=18.0, rx_channel=6,
                                           rx_timestamp=t))

    def test_is_a_lazy_iterator(self, tmp_path, square_db):
        path = tmp_path / "capture.jsonl"
        write_capture(path, square_db)
        iterator = iter_capture(path)
        assert iter(iterator) is iterator  # a generator, not a list
        first = next(iterator)
        assert first.rx_timestamp == 1.0

    def test_yields_all_frames_in_timestamp_order(self, tmp_path,
                                                  square_db):
        path = tmp_path / "capture.jsonl"
        # Locally out-of-order, as interleaved multi-card captures are.
        self.write_shuffled(path, square_db, [2, 0, 3, 1, 5, 4])
        timestamps = [r.rx_timestamp for r in iter_capture(path)]
        assert timestamps == sorted(timestamps)
        assert len(timestamps) == 6

    def test_reorder_buffer_zero_keeps_file_order(self, tmp_path,
                                                  square_db):
        path = tmp_path / "capture.jsonl"
        self.write_shuffled(path, square_db, [2, 0, 1])
        timestamps = [r.rx_timestamp
                      for r in iter_capture(path, reorder_buffer=0)]
        assert timestamps == [2.0, 0.0, 1.0]

    def test_matches_replay_capture(self, tmp_path, square_db):
        path = tmp_path / "capture.jsonl"
        write_capture(path, square_db)
        streamed = list(iter_capture(path))
        assert len(streamed) == replay_capture(path).frames_replayed

    def test_rejects_negative_buffer(self, tmp_path, square_db):
        path = tmp_path / "capture.jsonl"
        write_capture(path, square_db)
        with pytest.raises(ValueError):
            list(iter_capture(path, reorder_buffer=-1))


class TestLenientReplay:
    def corrupt(self, path):
        lines = path.read_text().splitlines()
        lines.insert(2, '{"type": "frame", "garbage": true}')
        lines.insert(4, "not json at all {{{")
        path.write_text("\n".join(lines) + "\n")

    def test_strict_replay_raises_on_malformed_record(self, tmp_path,
                                                      square_db):
        from repro.faults import CaptureError

        path = tmp_path / "capture.jsonl"
        write_capture(path, square_db)
        self.corrupt(path)
        with pytest.raises(CaptureError, match="malformed capture record"):
            list(iter_capture(path))
        # CaptureError still satisfies pre-existing ValueError handlers.
        with pytest.raises(ValueError):
            list(iter_capture(path))

    def test_lenient_replay_skips_and_counts(self, tmp_path, square_db):
        from repro import obs

        path = tmp_path / "capture.jsonl"
        write_capture(path, square_db)
        self.corrupt(path)
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            frames = list(iter_capture(path, strict=False))
        assert len(frames) == 5  # every well-formed frame survives
        counters = registry.snapshot()["counters"]
        assert counters["repro.sniffer.replay.skipped"] == 2
        assert counters["repro.sniffer.replay.frames"] == 5

    def test_lenient_full_replay_still_localizes(self, tmp_path,
                                                 square_db):
        path = tmp_path / "capture.jsonl"
        write_capture(path, square_db)
        self.corrupt(path)
        result = replay_capture(path, strict=False)
        assert result.frames_replayed == 5
        assert result.store.gamma(STA) == set(square_db.bssids)
