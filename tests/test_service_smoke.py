"""Service smoke: a real `marauder serve` process, queried over HTTP.

The CI canary for the sharded service: spawn the actual CLI as a
subprocess on a small simulated capture, issue `locate`/`health`
queries, scrape Prometheus metrics, kill one shard through the chaos
endpoint, and require the fleet to recover from its checkpoint with
byte-identical serving state.
"""

import json
import os
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.geo.enu import LocalTangentPlane
from repro.geo.wgs84 import GeodeticCoordinate
from repro.knowledge.wigle import export_wigle_csv
from repro.net80211.capture_file import CaptureWriter
from repro.sim import build_attack_scenario

ORIGIN = GeodeticCoordinate(42.6555, -71.3262)
REPO_ROOT = Path(__file__).resolve().parent.parent


def get(base, path, timeout=10):
    try:
        with urllib.request.urlopen(base + path,
                                    timeout=timeout) as reply:
            return reply.status, reply.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


def post(base, path, timeout=10):
    request = urllib.request.Request(base + path, method="POST",
                                     data=b"")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, reply.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


@pytest.fixture(scope="module")
def capture(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("service_smoke")
    scenario = build_attack_scenario(seed=13, ap_count=30,
                                     area_m=300.0, bystander_count=3)
    scenario.world.sniffer.keep_frames = True
    scenario.world.run(duration_s=60.0)
    capture_path = tmp_path / "capture.jsonl"
    with CaptureWriter(capture_path) as writer:
        for received in scenario.world.sniffer.captured:
            writer.write(received)
    wigle_path = tmp_path / "wigle.csv"
    export_wigle_csv(scenario.truth_db, wigle_path,
                     LocalTangentPlane(ORIGIN))
    return scenario, capture_path, wigle_path, tmp_path


def test_serve_locate_scrape_kill_recover(capture):
    scenario, capture_path, wigle_path, tmp_path = capture
    victim = str(scenario.victim.mac)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    log_path = tmp_path / "serve.log"
    with open(log_path, "w", encoding="utf-8") as log:
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             str(capture_path), "--wigle", str(wigle_path),
             "--shards", "3", "--port", "0", "--chaos",
             "--checkpoint-dir", str(tmp_path / "ckpt"),
             "--checkpoint-every", "10",
             "--serve-seconds", "120"],
            env=env, stdout=log, stderr=subprocess.STDOUT)
    try:
        # Wait for the bound address, then for ingest to settle.
        base = None
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            text = log_path.read_text(encoding="utf-8")
            match = re.search(r"on (http://[\d.]+:\d+)", text)
            if match and "Ingest complete" in text:
                base = match.group(1)
                break
            assert process.poll() is None, f"serve died:\n{text}"
            time.sleep(0.5)
        assert base is not None, "serve never came up"

        # Health: every shard alive.
        status, body = get(base, "/health")
        assert status == 200
        health = json.loads(body)
        assert health["healthy"]
        assert len(health["shards"]) == 3

        # Locate the victim; snapshot the whole fleet.
        status, located = get(base, f"/locate?device={victim}")
        assert status == 200
        assert json.loads(located)["located"]
        before_snapshot = get(base, "/snapshot")[1]
        assert json.loads(before_snapshot)["devices"] > 0

        # Prometheus scrape over the merged registries.
        status, metrics = get(base, "/metrics")
        assert status == 200
        assert "# TYPE repro_engine_frames counter" in metrics
        assert "repro_engine_frames_total" in metrics
        assert "repro_service_frames_published_total" in metrics

        # At least one shard crossed a checkpoint barrier; kill one
        # that provably has a checkpoint on disk.
        checkpoints = sorted(
            p.name for p in (tmp_path / "ckpt").glob("*.ckpt.json"))
        assert checkpoints, "no shard ever wrote a checkpoint"
        target = int(checkpoints[0].split("-")[1].split(".")[0])

        # Chaos: kill that shard, then prove recovery is invisible —
        # the next state-touching read restarts it from checkpoint +
        # retention replay and answers exactly as before.
        status, body = post(base, f"/chaos/kill?shard={target}")
        assert status == 200
        health = json.loads(get(base, "/health")[1])
        assert not health["healthy"]
        assert health["shards"][target]["alive"] is False

        after_snapshot = get(base, "/snapshot")[1]
        assert after_snapshot == before_snapshot
        assert (json.loads(get(base, f"/locate?device={victim}")[1])
                == json.loads(located))
        health = json.loads(get(base, "/health")[1])
        assert health["healthy"]
        assert health["shards"][target]["restarts"] == 1

        # Graceful drain: SIGTERM settles the fleet and exits 0.
        process.terminate()
        assert process.wait(timeout=60) == 0
        text = log_path.read_text(encoding="utf-8")
        assert "Draining fleet for shutdown" in text
        assert "stopped cleanly" in text
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
