"""Region-overlay rendering tests."""

import pytest

from repro.display.svgmap import MapRenderer
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.region import DiscIntersection


@pytest.fixture
def renderer():
    return MapRenderer(width_m=200.0, height_m=200.0, pixels=200)


class TestRegionOverlay:
    def test_lens_region_renders_path(self, renderer):
        region = DiscIntersection([Circle(Point(80.0, 100.0), 40.0),
                                   Circle(Point(120.0, 100.0), 40.0)])
        renderer.add_region(region)
        svg = renderer.to_svg()
        assert "<path" in svg
        assert svg.count(" A ") >= 1 or "A " in svg  # arc segments

    def test_three_disc_region(self, renderer):
        region = DiscIntersection([Circle(Point(80.0, 100.0), 50.0),
                                   Circle(Point(120.0, 100.0), 50.0),
                                   Circle(Point(100.0, 130.0), 50.0)])
        renderer.add_region(region)
        assert "<path" in renderer.to_svg()

    def test_empty_region_renders_nothing(self, renderer):
        region = DiscIntersection([Circle(Point(0.0, 0.0), 10.0),
                                   Circle(Point(100.0, 0.0), 10.0)])
        before = renderer.to_svg()
        renderer.add_region(region)
        assert renderer.to_svg() == before

    def test_nested_region_renders_circle(self, renderer):
        region = DiscIntersection([Circle(Point(100.0, 100.0), 80.0),
                                   Circle(Point(100.0, 100.0), 20.0)])
        renderer.add_region(region)
        svg = renderer.to_svg()
        assert 'fill-opacity="0.15"' in svg
        assert "<circle" in svg

    def test_single_disc_region(self, renderer):
        region = DiscIntersection([Circle(Point(100.0, 100.0), 30.0)])
        renderer.add_region(region)
        assert "<circle" in renderer.to_svg()

    def test_path_endpoints_match_vertices(self, renderer):
        """The rendered arc path passes through the region vertices."""
        region = DiscIntersection([Circle(Point(80.0, 100.0), 40.0),
                                   Circle(Point(120.0, 100.0), 40.0)])
        renderer.add_region(region)
        svg = renderer.to_svg()
        for vertex in region.vertices:
            x, y = renderer._px(vertex)
            # Coordinates appear (to 1 decimal) somewhere in the path.
            assert f"{x:.1f}" in svg or f"{x:.2f}" in svg
