"""Circle, pairwise intersection, and lens-area tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.circle import Circle, circle_intersections, lens_area
from repro.geometry.point import Point

coord = st.floats(min_value=-100.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False)
radius = st.floats(min_value=0.1, max_value=50.0,
                   allow_nan=False, allow_infinity=False)


class TestCircle:
    def test_area(self):
        assert Circle(Point(0, 0), 2.0).area == pytest.approx(4 * math.pi)

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            Circle(Point(0, 0), -1.0)

    def test_contains_interior_boundary_exterior(self):
        disc = Circle(Point(0, 0), 1.0)
        assert disc.contains(Point(0.5, 0.0))
        assert disc.contains(Point(1.0, 0.0))
        assert not disc.contains(Point(1.1, 0.0))

    def test_contains_tolerance(self):
        disc = Circle(Point(0, 0), 1.0)
        assert disc.contains(Point(1.0 + 1e-10, 0.0))

    def test_on_boundary(self):
        disc = Circle(Point(0, 0), 5.0)
        assert disc.on_boundary(Point(5.0, 0.0))
        assert not disc.on_boundary(Point(4.0, 0.0))

    def test_point_at(self):
        disc = Circle(Point(1, 1), 2.0)
        p = disc.point_at(math.pi / 2)
        assert p.x == pytest.approx(1.0)
        assert p.y == pytest.approx(3.0)

    def test_contains_circle(self):
        big = Circle(Point(0, 0), 10.0)
        small = Circle(Point(3, 0), 2.0)
        assert big.contains_circle(small)
        assert not small.contains_circle(big)

    def test_contains_circle_identical(self):
        disc = Circle(Point(0, 0), 5.0)
        assert disc.contains_circle(Circle(Point(0, 0), 5.0))


class TestCircleIntersections:
    def test_two_points(self):
        points = circle_intersections(Circle(Point(0, 0), 1.0),
                                      Circle(Point(1, 0), 1.0))
        assert len(points) == 2
        for p in points:
            assert p.x == pytest.approx(0.5)
            assert abs(p.y) == pytest.approx(math.sqrt(0.75))

    def test_disjoint(self):
        assert circle_intersections(Circle(Point(0, 0), 1.0),
                                    Circle(Point(5, 0), 1.0)) == []

    def test_nested(self):
        assert circle_intersections(Circle(Point(0, 0), 5.0),
                                    Circle(Point(1, 0), 1.0)) == []

    def test_external_tangency(self):
        points = circle_intersections(Circle(Point(0, 0), 1.0),
                                      Circle(Point(2, 0), 1.0))
        assert len(points) == 1
        assert points[0].x == pytest.approx(1.0)
        assert points[0].y == pytest.approx(0.0, abs=1e-9)

    def test_concentric(self):
        assert circle_intersections(Circle(Point(0, 0), 1.0),
                                    Circle(Point(0, 0), 2.0)) == []

    def test_identical_circles(self):
        assert circle_intersections(Circle(Point(0, 0), 1.0),
                                    Circle(Point(0, 0), 1.0)) == []

    @given(coord, coord, radius, coord, coord, radius)
    def test_intersection_points_lie_on_both_circles(self, ax, ay, ar,
                                                     bx, by, br):
        a = Circle(Point(ax, ay), ar)
        b = Circle(Point(bx, by), br)
        for p in circle_intersections(a, b):
            scale = max(1.0, ar, br)
            assert a.on_boundary(p, tol=1e-6 * scale)
            assert b.on_boundary(p, tol=1e-6 * scale)


class TestLensArea:
    def test_disjoint_zero(self):
        assert lens_area(Circle(Point(0, 0), 1.0),
                         Circle(Point(3, 0), 1.0)) == 0.0

    def test_nested_is_smaller_disc(self):
        area = lens_area(Circle(Point(0, 0), 5.0),
                         Circle(Point(1, 0), 1.0))
        assert area == pytest.approx(math.pi)

    def test_identical(self):
        area = lens_area(Circle(Point(0, 0), 2.0), Circle(Point(0, 0), 2.0))
        assert area == pytest.approx(4 * math.pi)

    def test_known_half_overlap(self):
        # Unit circles at distance 1: classic lens area.
        area = lens_area(Circle(Point(0, 0), 1.0), Circle(Point(1, 0), 1.0))
        expected = 2 * math.acos(0.5) - 0.5 * math.sqrt(3)
        assert area == pytest.approx(expected)

    def test_symmetry(self):
        a = Circle(Point(0, 0), 2.0)
        b = Circle(Point(1.5, 0.5), 1.0)
        assert lens_area(a, b) == pytest.approx(lens_area(b, a))

    @given(coord, coord, radius, coord, coord, radius)
    def test_bounds(self, ax, ay, ar, bx, by, br):
        a = Circle(Point(ax, ay), ar)
        b = Circle(Point(bx, by), br)
        area = lens_area(a, b)
        assert 0.0 <= area <= min(a.area, b.area) + 1e-9

    @given(coord, coord, radius)
    def test_tangent_circles_zero_area(self, x, y, r):
        a = Circle(Point(x, y), r)
        b = Circle(Point(x + 2 * r, y), r)
        # Rounding can push tangency marginally either way; the area
        # must be non-negative and negligible relative to the discs.
        area = lens_area(a, b)
        assert 0.0 <= area <= 1e-4 * a.area
