"""Two-phase simplex tests: textbook LPs, edge cases, scipy cross-check."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linprog

from repro.lp.simplex import solve_lp


class TestBasicLps:
    def test_textbook_maximize(self):
        # max x + y s.t. x + 2y <= 4, 3x + y <= 6 -> (1.6, 1.2).
        result = solve_lp([1.0, 1.0], a_ub=[[1, 2], [3, 1]], b_ub=[4, 6],
                          bounds=[(0, None), (0, None)], maximize=True)
        assert result.is_optimal
        assert result.objective == pytest.approx(2.8)
        assert result.x[0] == pytest.approx(1.6)
        assert result.x[1] == pytest.approx(1.2)

    def test_minimize(self):
        # min x + y s.t. x + y >= 2 (as -x - y <= -2) -> objective 2.
        result = solve_lp([1.0, 1.0], a_ub=[[-1, -1]], b_ub=[-2],
                          bounds=[(0, None), (0, None)])
        assert result.is_optimal
        assert result.objective == pytest.approx(2.0)

    def test_equality_constraint(self):
        # min x + 2y s.t. x + y == 3 -> x = 3, y = 0.
        result = solve_lp([1.0, 2.0], a_eq=[[1, 1]], b_eq=[3],
                          bounds=[(0, None), (0, None)])
        assert result.is_optimal
        assert result.objective == pytest.approx(3.0)
        assert result.x[0] == pytest.approx(3.0)

    def test_upper_bounds(self):
        result = solve_lp([1.0], bounds=[(0, 5)], maximize=True)
        assert result.is_optimal
        assert result.x[0] == pytest.approx(5.0)

    def test_shifted_lower_bounds(self):
        # min x with x >= 2.5.
        result = solve_lp([1.0], bounds=[(2.5, None)])
        assert result.is_optimal
        assert result.x[0] == pytest.approx(2.5)

    def test_negative_lower_bounds(self):
        result = solve_lp([1.0], bounds=[(-3, 4)])
        assert result.is_optimal
        assert result.x[0] == pytest.approx(-3.0)

    def test_no_constraints_minimum_at_lower(self):
        result = solve_lp([2.0, 3.0], bounds=[(0, None), (0, None)])
        assert result.is_optimal
        assert result.objective == pytest.approx(0.0)


class TestDegenerateOutcomes:
    def test_infeasible(self):
        # x <= 1 and x >= 3 simultaneously.
        result = solve_lp([1.0], a_ub=[[1], [-1]], b_ub=[1, -3],
                          bounds=[(0, None)])
        assert result.status == "infeasible"
        assert result.x is None

    def test_unbounded(self):
        result = solve_lp([1.0], bounds=[(0, None)], maximize=True)
        assert result.status == "unbounded"

    def test_infeasible_bounds(self):
        result = solve_lp([1.0], bounds=[(5, 4)])
        assert result.status == "infeasible"

    def test_degenerate_lp_terminates(self):
        # Classic Beale cycling example (cycles under naive Dantzig).
        c = [-0.75, 150.0, -0.02, 6.0]
        a_ub = [[0.25, -60.0, -0.04, 9.0],
                [0.5, -90.0, -0.02, 3.0],
                [0.0, 0.0, 1.0, 0.0]]
        b_ub = [0.0, 0.0, 1.0]
        result = solve_lp(c, a_ub=a_ub, b_ub=b_ub,
                          bounds=[(0, None)] * 4)
        assert result.is_optimal
        assert result.objective == pytest.approx(-0.05)

    def test_redundant_equalities(self):
        result = solve_lp([1.0, 1.0], a_eq=[[1, 1], [2, 2]], b_eq=[2, 4],
                          bounds=[(0, None), (0, None)])
        assert result.is_optimal
        assert result.objective == pytest.approx(2.0)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            solve_lp([1.0], a_ub=[[1, 2]], b_ub=[1])  # column mismatch
        with pytest.raises(ValueError):
            solve_lp([1.0], a_ub=[[1]], b_ub=[1, 2])  # row mismatch
        with pytest.raises(ValueError):
            solve_lp([1.0], bounds=[(None, 1)])  # infinite lower bound


class TestScipyCrossCheck:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_lps_match_scipy(self, data):
        n = data.draw(st.integers(min_value=1, max_value=5))
        m = data.draw(st.integers(min_value=0, max_value=6))
        # Quantize coefficients to 1/64ths: denormal-ish entries like
        # 1e-7 make the instance so ill-conditioned that HiGHS's own
        # feasibility tolerance (~1e-9 on a variable) amplifies into
        # objective differences far beyond any sane comparison
        # tolerance — both solvers are "right" within their tolerances
        # yet disagree.  Well-scaled coefficients keep the cross-check
        # meaningful.
        coef = st.floats(min_value=-5.0, max_value=5.0,
                         allow_nan=False, allow_infinity=False,
                         ).map(lambda v: round(v * 64.0) / 64.0)
        c = data.draw(st.lists(coef, min_size=n, max_size=n))
        a_ub = [data.draw(st.lists(coef, min_size=n, max_size=n))
                for _ in range(m)]
        # Nonnegative RHS keeps most instances feasible (origin works).
        b_ub = data.draw(st.lists(
            st.floats(min_value=0.0, max_value=10.0,
                      allow_nan=False, allow_infinity=False,
                      ).map(lambda v: round(v * 64.0) / 64.0),
            min_size=m, max_size=m))
        bounds = [(0.0, 10.0)] * n

        ours = solve_lp(c, a_ub=a_ub or None, b_ub=b_ub or None,
                        bounds=bounds)
        reference = linprog(c, A_ub=np.array(a_ub) if m else None,
                            b_ub=np.array(b_ub) if m else None,
                            bounds=bounds, method="highs")
        if reference.status == 0:
            assert ours.is_optimal
            assert ours.objective == pytest.approx(reference.fun,
                                                   rel=1e-6, abs=1e-6)
        elif reference.status == 2:
            assert ours.status == "infeasible"


class TestApRadShapedLp:
    def test_radius_estimation_shape(self):
        # Three collinear APs at 0, 100, 260: the pair (0,100) is
        # co-observed (r0 + r1 >= 100); the others are not.
        # max r0+r1+r2 s.t. r0+r1 >= 100, r1+r2 <= 160, r0+r2 <= 260,
        # 0 <= r <= 100.
        result = solve_lp(
            [1.0, 1.0, 1.0],
            a_ub=[[-1, -1, 0], [0, 1, 1], [1, 0, 1]],
            b_ub=[-100, 160, 260],
            bounds=[(0, 100)] * 3,
            maximize=True,
        )
        assert result.is_optimal
        r0, r1, r2 = result.x
        assert r0 + r1 >= 100 - 1e-6
        assert r1 + r2 <= 160 + 1e-6
        assert r0 + r2 <= 260 + 1e-6
        # Optimum: r0 = 100, r1 = 100, r2 = 60 -> 260.
        assert result.objective == pytest.approx(260.0)
