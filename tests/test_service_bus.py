"""Bus transport tests: queue semantics, back-pressure, reset."""

import threading

import pytest

from repro.service import Bus, BusTimeout, MpQueueBus, QueueBus


class TestQueueBus:
    def test_publish_collect_roundtrip(self):
        bus = QueueBus(2)
        inbox, outbox = bus.endpoints(1)
        bus.publish(1, ("frames", [1, 2, 3]))
        assert inbox.get() == ("frames", [1, 2, 3])
        outbox.put(("reply", 0, "ok"))
        assert bus.collect(1) == ("reply", 0, "ok")

    def test_shards_are_isolated(self):
        bus = QueueBus(3)
        bus.publish(0, ("a",))
        bus.publish(2, ("b",))
        assert bus.endpoints(0)[0].get() == ("a",)
        assert bus.endpoints(2)[0].get() == ("b",)
        with pytest.raises(BusTimeout):
            bus.collect(1, block=False)

    def test_collect_timeout_raises(self):
        bus = QueueBus(1)
        with pytest.raises(BusTimeout):
            bus.collect(0, timeout=0.01)

    def test_publish_timeout_on_full_inbox(self):
        bus = QueueBus(1, capacity=2)
        bus.publish(0, ("x",))
        bus.publish(0, ("y",))
        with pytest.raises(BusTimeout):
            bus.publish(0, ("z",), timeout=0.01)

    def test_bounded_inbox_backpressures_until_consumed(self):
        bus = QueueBus(1, capacity=1)
        bus.publish(0, ("first",))
        released = threading.Event()

        def consume_later():
            released.wait(timeout=5.0)
            bus.endpoints(0)[0].get()

        consumer = threading.Thread(target=consume_later)
        consumer.start()
        released.set()
        # Blocks until the consumer frees a slot, then succeeds.
        bus.publish(0, ("second",), timeout=5.0)
        consumer.join()
        assert bus.endpoints(0)[0].get() == ("second",)

    def test_reset_replaces_endpoints(self):
        bus = QueueBus(2)
        old_inbox, old_outbox = bus.endpoints(0)
        bus.publish(0, ("stale",))
        bus.reset(0)
        new_inbox, new_outbox = bus.endpoints(0)
        assert new_inbox is not old_inbox
        assert new_outbox is not old_outbox
        # The fresh inbox holds nothing from before the crash.
        assert new_inbox.qsize() == 0
        # The untouched shard keeps its endpoints.
        assert bus.endpoints(1)[0] is bus.endpoints(1)[0]

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            QueueBus(0)
        with pytest.raises(ValueError):
            QueueBus(1, capacity=0)


class TestMpQueueBus:
    def test_roundtrip_and_close(self):
        bus = MpQueueBus(1, capacity=4)
        bus.publish(0, ("frames", ["payload"]))
        inbox, outbox = bus.endpoints(0)
        assert inbox.get(timeout=5.0) == ("frames", ["payload"])
        outbox.put(("ckpt_ack", 7))
        assert bus.collect(0, timeout=5.0) == ("ckpt_ack", 7)
        bus.close()

    def test_collect_timeout_raises(self):
        bus = MpQueueBus(1)
        with pytest.raises(BusTimeout):
            bus.collect(0, timeout=0.01)
        bus.close()


class TestBusSeam:
    def test_base_bus_requires_a_transport(self):
        with pytest.raises(NotImplementedError):
            Bus(1)
