"""MetricsRegistry under concurrency: the scrape path reads while
shard threads write.

The registry's contract is that instrument *recording* stays lock-free
(hot path) while structural operations — instrument creation,
iteration, snapshot, merge, reset — are serialized, so a scrape racing
a busy fleet never crashes and never observes a torn structure.
"""

import threading

from repro import obs
from repro.obs import MetricsRegistry, merge_snapshots


def hammer(registry: MetricsRegistry, worker: int, rounds: int,
           errors: list) -> None:
    try:
        for i in range(rounds):
            # New label sets force instrument creation mid-scrape.
            registry.counter("svc.frames", worker=worker,
                             phase=i % 7).inc()
            registry.gauge("svc.depth", worker=worker).set(i)
    except Exception as error:  # pragma: no cover - the failure signal
        errors.append(error)


class TestConcurrentScrape:
    def test_snapshot_while_writers_create_instruments(self):
        registry = MetricsRegistry()
        errors: list = []
        rounds = 400
        writers = [threading.Thread(target=hammer,
                                    args=(registry, w, rounds, errors))
                   for w in range(4)]
        snapshots = []

        def scrape():
            try:
                for _ in range(60):
                    snapshots.append(registry.snapshot())
                    registry.render_prometheus()
                    len(registry)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        scraper = threading.Thread(target=scrape)
        for thread in writers + [scraper]:
            thread.start()
        for thread in writers + [scraper]:
            thread.join()
        assert errors == []
        # The final snapshot carries every write.
        final = MetricsRegistry()
        final.merge(registry.snapshot())
        total = sum(
            instrument.value for instrument in final.instruments()
            if instrument.name == "svc.frames")
        assert total == 4 * rounds

    def test_concurrent_merges_lose_nothing(self):
        # N shard registries merged into one scrape registry from
        # several threads at once (the fleet scrape fan-in).
        shard_snapshots = []
        for shard in range(6):
            shard_registry = MetricsRegistry()
            shard_registry.counter("shard.frames").inc(100)
            shard_registry.counter("shard.devices", shard=shard).inc(3)
            shard_snapshots.append(shard_registry.snapshot())
        merged = MetricsRegistry()
        errors: list = []

        def merge_one(snapshot):
            try:
                merged.merge(snapshot)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=merge_one, args=(snapshot,))
                   for snapshot in shard_snapshots]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        frames = sum(i.value for i in merged.instruments()
                     if i.name == "shard.frames")
        assert frames == 600

    def test_merge_snapshots_helper_folds_shards(self):
        registries = []
        for shard in range(3):
            registry = MetricsRegistry()
            registry.counter("fleet.frames").inc(10 * (shard + 1))
            registries.append(registry)
        merged = merge_snapshots([r.snapshot() for r in registries])
        total = sum(i.value for i in merged.instruments()
                    if i.name == "fleet.frames")
        assert total == 60

    def test_reset_races_with_writers_without_crashing(self):
        registry = MetricsRegistry()
        errors: list = []
        stop = threading.Event()

        def write():
            try:
                worker = 0
                while not stop.is_set():
                    registry.counter("race.count", worker=worker).inc()
                    worker = (worker + 1) % 5
            except Exception as error:  # pragma: no cover
                errors.append(error)

        writer = threading.Thread(target=write)
        writer.start()
        try:
            for _ in range(50):
                registry.reset()
                registry.snapshot()
        finally:
            stop.set()
            writer.join()
        assert errors == []
