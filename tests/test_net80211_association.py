"""Association and data-traffic tests (the non-probing evidence path)."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.net80211.frames import FrameType
from repro.net80211.mac import MacAddress
from repro.net80211.medium import Medium
from repro.net80211.station import PROFILES, MobileStation
from repro.radio.propagation import FreeSpaceModel
from repro.sim.world import CampusWorld
from repro.sniffer.receiver import build_marauder_sniffer

from tests.test_sim_world import make_ap


def make_station(**overrides):
    defaults = dict(
        mac=MacAddress.random(np.random.default_rng(3)),
        position=Point(150.0, 150.0),
        profile=PROFILES["standard"],
    )
    defaults.update(overrides)
    return MobileStation(**defaults)


class TestDataTraffic:
    def test_associated_station_emits_data(self):
        station = make_station(data_interval_s=10.0)
        ap = MacAddress(0xA9)
        station.associate(ap, channel=6)
        frames = [f for f in station.tick(0.0)
                  if f.frame_type is FrameType.DATA]
        assert len(frames) == 1
        assert frames[0].bssid == ap
        assert frames[0].channel == 6

    def test_data_interval_respected(self):
        station = make_station(profile=PROFILES["passive"],
                               data_interval_s=10.0)
        station.associate(MacAddress(1), channel=1)
        assert len(station.tick(0.0)) == 1
        assert station.tick(5.0) == []
        assert len(station.tick(10.0)) == 1

    def test_no_data_without_association(self):
        station = make_station(profile=PROFILES["passive"],
                               data_interval_s=10.0)
        assert station.tick(0.0) == []

    def test_no_data_by_default(self):
        station = make_station(profile=PROFILES["passive"])
        station.associate(MacAddress(1), channel=1)
        assert station.tick(0.0) == []

    def test_deauth_stops_data(self):
        from repro.net80211.frames import deauthentication

        station = make_station(profile=PROFILES["passive"],
                               data_interval_s=5.0)
        ap = MacAddress(7)
        station.associate(ap, channel=6)
        station.handle_frame(
            deauthentication(ap, station.mac, ap, 6, 1.0), now=1.0)
        assert station.associated_channel is None
        # Rescan fires (forced), but no data frames.
        frames = station.tick(2.0)
        assert all(f.frame_type is not FrameType.DATA for f in frames)


class TestAutoAssociation:
    def make_world(self):
        aps = [make_ap(0, 100.0, 100.0), make_ap(1, 200.0, 100.0)]
        medium = Medium(FreeSpaceModel())
        sniffer = build_marauder_sniffer(Point(150.0, 150.0), medium)
        return CampusWorld(aps, medium, sniffer=sniffer, seed=0), aps

    def test_station_joins_closest_responder(self):
        world, aps = self.make_world()
        station = make_station(position=Point(120.0, 100.0),
                               auto_associate=True)
        world.add_station(station)
        world.run(duration_s=70.0)
        assert station.associated_bssid == aps[0].bssid
        assert station.associated_channel == aps[0].channel

    def test_without_flag_no_association(self):
        world, _ = self.make_world()
        station = make_station(position=Point(120.0, 100.0))
        world.add_station(station)
        world.run(duration_s=70.0)
        assert station.associated_bssid is None

    def test_data_frames_reach_observation_store(self):
        """The non-probing evidence path: a device that probes once,
        associates, then only sends data stays locatable via Γ."""
        world, aps = self.make_world()
        station = make_station(position=Point(120.0, 100.0),
                               auto_associate=True, data_interval_s=5.0)
        world.add_station(station)
        world.run(duration_s=120.0)
        gamma = world.sniffer.store.gamma(station.mac)
        assert aps[0].bssid in gamma
