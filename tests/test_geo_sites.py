"""Site-preset tests."""

import pytest

from repro.geo.distance import haversine_distance
from repro.geo.sites import (
    GWU_CAMPUS,
    UML_NORTH_CAMPUS,
    gwu_plane,
    uml_plane,
)


class TestSites:
    def test_uml_plane_origin(self):
        plane = uml_plane()
        east, north, up = plane.to_enu(UML_NORTH_CAMPUS)
        assert abs(east) < 1e-6 and abs(north) < 1e-6 and abs(up) < 1e-6

    def test_gwu_plane_origin(self):
        plane = gwu_plane()
        east, north, _ = plane.to_enu(GWU_CAMPUS)
        assert abs(east) < 1e-6 and abs(north) < 1e-6

    def test_campuses_are_massachusetts_and_dc(self):
        assert 42.0 < UML_NORTH_CAMPUS.latitude_deg < 43.0
        assert 38.0 < GWU_CAMPUS.latitude_deg < 39.5

    def test_inter_campus_distance(self):
        # ~640 km Lowell <-> Washington DC.
        distance = haversine_distance(UML_NORTH_CAMPUS, GWU_CAMPUS)
        assert 550_000 < distance < 700_000

    def test_planes_are_independent(self):
        # A point 100 m east of UML is far from the GWU origin.
        spot = uml_plane().from_enu(100.0, 0.0)
        east, north, _ = gwu_plane().to_enu(spot)
        assert (east ** 2 + north ** 2) ** 0.5 > 100_000
