"""Shoelace area / centroid tests."""

import pytest

from repro.geometry.point import Point
from repro.geometry.polygon import polygon_area, polygon_centroid


class TestPolygonArea:
    def test_unit_square_ccw(self):
        square = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        assert polygon_area(square) == pytest.approx(1.0)

    def test_unit_square_cw_negative(self):
        square = [Point(0, 0), Point(0, 1), Point(1, 1), Point(1, 0)]
        assert polygon_area(square) == pytest.approx(-1.0)

    def test_triangle(self):
        triangle = [Point(0, 0), Point(4, 0), Point(0, 3)]
        assert polygon_area(triangle) == pytest.approx(6.0)

    def test_degenerate_two_points(self):
        assert polygon_area([Point(0, 0), Point(5, 5)]) == 0.0

    def test_empty(self):
        assert polygon_area([]) == 0.0

    def test_translation_invariant(self):
        base = [Point(0, 0), Point(2, 0), Point(1, 3)]
        moved = [Point(p.x + 100, p.y - 50) for p in base]
        assert polygon_area(moved) == pytest.approx(polygon_area(base))


class TestPolygonCentroid:
    def test_square(self):
        square = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        centroid = polygon_centroid(square)
        assert centroid.x == pytest.approx(1.0)
        assert centroid.y == pytest.approx(1.0)

    def test_triangle_matches_vertex_mean(self):
        # For triangles the area centroid equals the vertex mean.
        triangle = [Point(0, 0), Point(3, 0), Point(0, 3)]
        centroid = polygon_centroid(triangle)
        assert centroid.x == pytest.approx(1.0)
        assert centroid.y == pytest.approx(1.0)

    def test_nonuniform_vertices_differ_from_mean(self):
        # An L-shape whose vertex mean is NOT its area centroid.
        l_shape = [Point(0, 0), Point(4, 0), Point(4, 1), Point(1, 1),
                   Point(1, 3), Point(0, 3)]
        centroid = polygon_centroid(l_shape)
        vertex_mean_x = sum(p.x for p in l_shape) / len(l_shape)
        assert centroid.x != pytest.approx(vertex_mean_x, abs=1e-6)
        # Known centroid of this L (area 6: a 4x1 box plus a 1x2 box).
        assert centroid.x == pytest.approx((4 * 2.0 + 2 * 0.5) / 6)
        assert centroid.y == pytest.approx((4 * 0.5 + 2 * 2.0) / 6)

    def test_two_point_fallback_is_midpoint(self):
        centroid = polygon_centroid([Point(0, 0), Point(2, 4)])
        assert centroid == Point(1, 2)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            polygon_centroid([])

    def test_orientation_independent(self):
        ccw = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        cw = list(reversed(ccw))
        assert polygon_centroid(cw).x == pytest.approx(
            polygon_centroid(ccw).x)
        assert polygon_centroid(cw).y == pytest.approx(
            polygon_centroid(ccw).y)
