"""`marauder serve` CLI tests: end-to-end fleet over a capture."""

import json
import threading
import urllib.request

import pytest

from repro.cli import main
from repro.geo.enu import LocalTangentPlane
from repro.geo.wgs84 import GeodeticCoordinate
from repro.knowledge.wigle import export_wigle_csv
from repro.net80211.capture_file import CaptureWriter
from repro.sim import build_attack_scenario

ORIGIN = GeodeticCoordinate(42.6555, -71.3262)


@pytest.fixture(scope="module")
def sim_capture(tmp_path_factory):
    """A small simulated capture + matching WiGLE knowledge."""
    tmp_path = tmp_path_factory.mktemp("serve_cli")
    scenario = build_attack_scenario(seed=11, ap_count=30, area_m=300.0,
                                     bystander_count=3)
    scenario.world.sniffer.keep_frames = True
    scenario.world.run(duration_s=60.0)
    capture_path = tmp_path / "capture.jsonl"
    with CaptureWriter(capture_path) as writer:
        for received in scenario.world.sniffer.captured:
            writer.write(received)
    wigle_path = tmp_path / "wigle.csv"
    export_wigle_csv(scenario.truth_db, wigle_path,
                     LocalTangentPlane(ORIGIN))
    return scenario, capture_path, wigle_path


class TestServeCommand:
    def test_ingests_serves_and_drains(self, sim_capture, capsys):
        scenario, capture_path, wigle_path = sim_capture
        code = main(["serve", str(capture_path),
                     "--wigle", str(wigle_path),
                     "--shards", "2", "--port", "0",
                     "--serve-seconds", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Serving 2 shard(s) [thread]" in out
        assert "Ingest complete:" in out
        assert "stopped cleanly" in out

    def test_queries_answer_while_serving(self, sim_capture, capsys,
                                          tmp_path):
        scenario, capture_path, wigle_path = sim_capture
        victim = str(scenario.victim.mac)
        result = {}

        def run_cli():
            result["code"] = main(
                ["serve", str(capture_path),
                 "--wigle", str(wigle_path),
                 "--shards", "2", "--port", "0", "--chaos",
                 "--checkpoint-dir", str(tmp_path / "ckpt"),
                 "--checkpoint-every", "100",
                 "--serve-seconds", "10"])

        # The CLI owns the main thread in production; under test it
        # runs on a worker (signal handlers are skipped accordingly).
        thread = threading.Thread(target=run_cli, daemon=True)
        try:
            thread.start()
            base = None
            for _ in range(100):
                out = capsys.readouterr().out
                if "http://" in out:
                    base = out.split("on ")[1].split()[0]
                    break
                thread.join(timeout=0.2)
            assert base is not None, "server address never printed"
            # Wait until ingest settles, then query.
            for _ in range(50):
                with urllib.request.urlopen(base + "/health",
                                            timeout=10) as reply:
                    if json.loads(reply.read())["healthy"]:
                        break
                thread.join(timeout=0.2)
            with urllib.request.urlopen(
                    base + f"/locate?device={victim}",
                    timeout=10) as reply:
                located = json.loads(reply.read())
            assert located["located"]
            with urllib.request.urlopen(base + "/metrics",
                                        timeout=10) as reply:
                assert b"# TYPE" in reply.read()
        finally:
            thread.join(timeout=30.0)
        assert result.get("code") == 0

    def test_missing_wigle_fails_cleanly(self, sim_capture, capsys):
        _, capture_path, _ = sim_capture
        code = main(["serve", str(capture_path),
                     "--wigle", "/nonexistent.csv",
                     "--serve-seconds", "0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_shards_fails_cleanly(self, sim_capture, capsys):
        _, capture_path, wigle_path = sim_capture
        code = main(["serve", str(capture_path),
                     "--wigle", str(wigle_path),
                     "--shards", "0", "--serve-seconds", "0"])
        assert code == 2
        assert "--shards" in capsys.readouterr().err

    def test_bad_localizer_spec_fails_cleanly(self, sim_capture,
                                              capsys):
        _, capture_path, wigle_path = sim_capture
        code = main(["serve", str(capture_path),
                     "--wigle", str(wigle_path),
                     "--localizer", "warp-drive",
                     "--serve-seconds", "0"])
        assert code == 2
        assert "unknown localizer" in capsys.readouterr().err
