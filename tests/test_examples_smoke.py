"""Smoke tests: every example script runs end to end.

Examples are part of the public API surface; these tests execute each
one in-process (``runpy``) from a temp directory so any files they
write stay out of the repository.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "coverage_planning.py",
    "urban_attack.py",
    "active_attack.py",
    "defenses_evaluation.py",
    "campus_tracking.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example reports something


def test_quickstart_localizes_victim(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "M-Loc" in out
    assert "error" in out


def test_campus_tracking_writes_map(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    runpy.run_path(str(EXAMPLES_DIR / "campus_tracking.py"),
                   run_name="__main__")
    assert (tmp_path / "marauders_map.html").exists()


def test_all_examples_have_docstrings():
    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 8
    for script in scripts:
        text = script.read_text()
        assert text.startswith('"""'), f"{script.name} lacks a docstring"
        assert "Run:" in text, f"{script.name} lacks a Run: line"
