"""Socket transports end to end: equivalence, chaos, network ingest.

The service's hard promise — sharded output byte-identical to a single
engine — must hold when the shards talk TCP, when their connections are
severed mid-stream, and when the frames themselves arrive over the
ingest gateway instead of a local file.
"""

import functools
import json
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.capture import make_capture_writer
from repro.engine import StreamingEngine
from repro.faults import FaultInjector, parse_fault_spec, use_injector
from repro.localization import MLoc
from repro.service import (FrameIngestServer, ServiceError,
                           ServiceServer, ShardConfig, ShardedEngine,
                           TRANSPORTS, stream_capture_to)
from repro.service import wire
from repro.service.socketbus import SocketBus

from tests.test_service_engine import (build_stream, fleet, fleet_fixes,
                                       single_engine_fixes, station)

#: Fast reconnect budget so chaos tests recover in milliseconds.
FAST_SOCKET = {"heartbeat_s": 0.1, "dead_after_s": 0.5,
               "reconnect": {"max_attempts": 5, "base_delay": 0.02,
                             "max_delay": 0.2}}


def wait_connected(engine, timeout=5.0):
    """Block until every shard worker has handshaked with the bus."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(engine.bus.connected(i) for i in range(engine.shards)):
            return
        time.sleep(0.01)
    raise AssertionError("shards never connected to the socket bus")


def socket_fleet(square_db, transport="socket", **kwargs):
    bus = SocketBus(kwargs.get("shards", 3), **FAST_SOCKET)
    return fleet(square_db, transport=transport, bus=bus, **kwargs)


class TestSocketEquivalence:
    def test_socket_transport_is_listed(self):
        assert "socket" in TRANSPORTS
        assert "socket-process" in TRANSPORTS

    def test_socket_fleet_matches_single_engine(self, square_db):
        frames = build_stream(square_db)
        want = single_engine_fixes(square_db, frames)
        with fleet(square_db, transport="socket") as engine:
            engine.ingest_stream(frames)
            engine.drain()
            assert fleet_fixes(engine) == want

    def test_socket_process_fleet_matches_single_engine(self,
                                                        square_db):
        frames = build_stream(square_db, devices=8, rounds=2)
        want = single_engine_fixes(square_db, frames)
        with fleet(square_db, transport="socket-process",
                   shards=2) as engine:
            engine.ingest_stream(frames)
            engine.drain()
            assert fleet_fixes(engine) == want


class TestSocketChaos:
    def test_connection_kill_mid_stream_is_byte_identical(self,
                                                          square_db):
        frames = build_stream(square_db, devices=12, rounds=4)
        want = single_engine_fixes(square_db, frames)
        with socket_fleet(square_db) as engine:
            half = len(frames) // 2
            engine.ingest_stream(frames[:half])
            engine.flush_publishes()
            wait_connected(engine)
            # Sever every shard's TCP connection; the workers stay up
            # and the reconnect machinery must hide the cut entirely.
            killed = [engine.kill_connection(i)
                      for i in range(engine.shards)]
            assert any(killed), "no live connection was severed"
            engine.ingest_stream(frames[half:])
            engine.drain()
            assert fleet_fixes(engine) == want

    def test_shard_kill_over_socket_is_byte_identical(self, square_db,
                                                      tmp_path):
        frames = build_stream(square_db, devices=12, rounds=4)
        want = single_engine_fixes(square_db, frames)
        with socket_fleet(square_db, checkpoint_dir=tmp_path / "ckpt",
                          checkpoint_every=20) as engine:
            half = len(frames) // 2
            engine.ingest_stream(frames[:half])
            engine.kill_shard(1)
            engine.ingest_stream(frames[half:])
            engine.drain()
            assert fleet_fixes(engine) == want
            assert engine._handles[1].restarts == 1

    def test_process_kill_over_socket_process_transport(self, square_db):
        frames = build_stream(square_db, devices=8, rounds=3)
        want = single_engine_fixes(square_db, frames)
        with socket_fleet(square_db, transport="socket-process",
                          shards=2) as engine:
            half = len(frames) // 2
            engine.ingest_stream(frames[:half])
            engine.kill_shard(0)
            engine.ingest_stream(frames[half:])
            engine.drain()
            assert fleet_fixes(engine) == want

    def test_kill_connection_needs_a_socket_transport(self, square_db):
        with fleet(square_db) as engine:
            with pytest.raises(ServiceError) as excinfo:
                engine.kill_connection(0)
            assert "no connections to kill" in str(excinfo.value)


class TestConfigurableTimeouts:
    def test_custom_timeouts_are_accepted(self, square_db):
        frames = build_stream(square_db, devices=4, rounds=1)
        with fleet(square_db, publish_timeout_s=5.0,
                   worker_join_timeout_s=3.0) as engine:
            engine.run(iter(frames))
            assert len(fleet_fixes(engine)) == 4

    def test_timeouts_must_be_positive(self, square_db):
        factory = functools.partial(MLoc, square_db)
        with pytest.raises(ValueError):
            ShardedEngine(factory, publish_timeout_s=0.0)
        with pytest.raises(ValueError):
            ShardedEngine(factory, worker_join_timeout_s=-1.0)


# ----------------------------------------------------------------------
# Network ingest gateway
# ----------------------------------------------------------------------

@pytest.fixture
def capture(square_db, tmp_path):
    frames = build_stream(square_db, devices=10, rounds=3)
    path = tmp_path / "capture.cap"
    with make_capture_writer(path, format="columnar",
                             block_records=64) as writer:
        for received in frames:
            writer.write(received)
    return path, frames


class TestIngestGateway:
    def test_streamed_capture_matches_local_ingest(self, square_db,
                                                   capture):
        path, frames = capture
        want = single_engine_fixes(square_db, frames)
        with fleet(square_db) as engine, \
                FrameIngestServer(engine) as gateway:
            stats = stream_capture_to(path, gateway.address,
                                      batch_records=16)
            engine.drain()
            assert fleet_fixes(engine) == want
        assert stats.frames == len(frames)
        assert stats.batches == (len(frames) + 15) // 16
        assert stats.reconnects == 0
        assert stats.batches_resent == 0

    def test_gateway_over_socket_transport(self, square_db, capture):
        path, frames = capture
        want = single_engine_fixes(square_db, frames)
        with socket_fleet(square_db) as engine, \
                FrameIngestServer(engine) as gateway:
            stream_capture_to(path, gateway.address, batch_records=32)
            engine.drain()
            assert fleet_fixes(engine) == want

    def test_same_client_id_rerun_is_a_noop(self, square_db, capture):
        path, frames = capture
        want = single_engine_fixes(square_db, frames)
        with fleet(square_db) as engine, \
                FrameIngestServer(engine) as gateway:
            first = stream_capture_to(path, gateway.address,
                                      batch_records=16,
                                      client_id="collector-7")
            engine.drain()
            before = engine.stats().frames_ingested
            # The rerun resumes past everything already acked: every
            # batch dedups server-side, nothing reaches the engine.
            stream_capture_to(path, gateway.address, batch_records=16,
                              client_id="collector-7")
            engine.drain()
            assert engine.stats().frames_ingested == before
            assert fleet_fixes(engine) == want
        assert first.frames == len(frames)

    def test_dropped_frames_are_resent_not_lost(self, square_db,
                                                capture):
        path, frames = capture
        want = single_engine_fixes(square_db, frames)
        injector = FaultInjector([
            parse_fault_spec("socket.recv:drop,times=3")])
        with fleet(square_db) as engine, \
                FrameIngestServer(engine) as gateway, \
                use_injector(injector, all_threads=True):
            stats = stream_capture_to(
                path, gateway.address, batch_records=16,
                ack_timeout_s=0.5,
                reconnect={"max_attempts": 8, "base_delay": 0.02,
                           "max_delay": 0.2})
            engine.drain()
            assert fleet_fixes(engine) == want
        assert injector.total_fired == 3
        assert stats.frames == len(frames)

    def test_non_ingest_hello_is_rejected(self, square_db):
        with fleet(square_db, shards=1) as engine, \
                FrameIngestServer(engine) as gateway:
            raw = socket.create_connection(gateway.address, timeout=5.0)
            try:
                wire.send_frame(raw, wire.HELLO, wire.hello_payload(
                    role="shard", shard=0))
                ftype, payload = wire.read_frame(raw)
                assert ftype == wire.HELLO_REJECT
                assert "client_id" in wire.unpack_dict(payload)["reason"]
            finally:
                raw.close()

    def test_bad_parameters_are_rejected(self, capture):
        path, _ = capture
        with pytest.raises(ValueError):
            stream_capture_to(path, ("127.0.0.1", 1), batch_records=0)
        with pytest.raises(ValueError):
            stream_capture_to(path, ("127.0.0.1", 1), window=0)

    def test_unreachable_gateway_raises_after_retries(self, capture):
        path, _ = capture
        # A port nothing listens on: the retry budget must exhaust
        # into an error, not hang.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_address = probe.getsockname()
        probe.close()
        with pytest.raises(OSError):
            stream_capture_to(
                path, dead_address,
                reconnect={"max_attempts": 2, "base_delay": 0.01,
                           "max_delay": 0.02})


# ----------------------------------------------------------------------
# HTTP chaos route
# ----------------------------------------------------------------------

def post(base, path):
    request = urllib.request.Request(base + path, method="POST",
                                     data=b"")
    try:
        with urllib.request.urlopen(request, timeout=10) as reply:
            return reply.status, reply.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


class TestHttpKillConnection:
    @pytest.fixture
    def served(self, square_db):
        engine = socket_fleet(square_db, shards=2)
        engine.ingest_stream(build_stream(square_db, devices=4,
                                          rounds=1))
        engine.flush_publishes()
        server = ServiceServer(engine, port=0, allow_chaos=True).start()
        host, port = server.address
        yield engine, f"http://{host}:{port}"
        server.stop()
        engine.stop()

    def test_kill_connection_route(self, served):
        engine, base = served
        status, body = post(base, "/chaos/kill-connection?shard=0")
        assert status == 200
        reply = json.loads(body)
        assert reply["shard"] == 0
        assert reply["killed"] in (True, False)
        # The fleet still serves after the cut.
        assert engine.health()["healthy"]

    def test_kill_connection_requires_shard(self, served):
        _, base = served
        assert post(base, "/chaos/kill-connection")[0] == 400

    def test_kill_connection_range_checked(self, served):
        _, base = served
        assert post(base, "/chaos/kill-connection?shard=9")[0] == 400

    def test_kill_connection_disabled_without_chaos_flag(self,
                                                         square_db):
        with fleet(square_db, shards=1) as engine:
            server = ServiceServer(engine, port=0,
                                   allow_chaos=False).start()
            try:
                host, port = server.address
                status, _ = post(f"http://{host}:{port}",
                                 "/chaos/kill-connection?shard=0")
                assert status == 403
            finally:
                server.stop()

    def test_kill_connection_on_queue_transport_is_503(self, square_db):
        with fleet(square_db, shards=1) as engine:
            server = ServiceServer(engine, port=0,
                                   allow_chaos=True).start()
            try:
                host, port = server.address
                status, body = post(f"http://{host}:{port}",
                                    "/chaos/kill-connection?shard=0")
                assert status == 503
                assert "no connections to kill" in body
            finally:
                server.stop()
