"""RetryPolicy: deterministic schedules, typed filters, fake clocks."""

import pytest

from repro.faults import ReproError, RetryPolicy, SinkError


class TestSchedule:
    def test_exponential_schedule_with_cap(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1,
                             multiplier=2.0, max_delay=0.5,
                             sleep=lambda s: None)
        assert policy.delays() == pytest.approx([0.1, 0.2, 0.4, 0.5])

    def test_jitter_is_deterministic_per_seed(self):
        kwargs = dict(max_attempts=4, base_delay=0.1, jitter=0.5,
                      sleep=lambda s: None)
        one = RetryPolicy(seed=3, **kwargs).delays()
        two = RetryPolicy(seed=3, **kwargs).delays()
        other = RetryPolicy(seed=4, **kwargs).delays()
        assert one == two
        assert one != other
        base = RetryPolicy(jitter=0.0, **{k: v for k, v in kwargs.items()
                                          if k != "jitter"}).delays()
        for jittered, plain in zip(one, base):
            assert plain <= jittered <= plain * 1.5

    def test_schedule_identical_across_calls(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.3,
                             sleep=lambda s: None)
        assert policy.delays() == policy.delays()


class TestCall:
    def test_returns_result_after_transient_failures(self):
        sleeps = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.1,
                             sleep=sleeps.append)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ReproError("transient")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert len(attempts) == 3
        assert sleeps == pytest.approx([0.1, 0.2])

    def test_final_failure_reraises_original(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0,
                             sleep=lambda s: None)

        def always():
            raise SinkError("permanent")

        with pytest.raises(SinkError, match="permanent"):
            policy.call(always)

    def test_non_retryable_propagates_immediately(self):
        calls = []
        policy = RetryPolicy(max_attempts=5, base_delay=0.0,
                             sleep=lambda s: None)

        def wrong_type():
            calls.append(1)
            raise KeyError("not a ReproError")

        with pytest.raises(KeyError):
            policy.call(wrong_type)
        assert len(calls) == 1

    def test_on_retry_sees_attempt_error_delay(self):
        events = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.1,
                             sleep=lambda s: None)
        state = {"n": 0}

        def twice():
            state["n"] += 1
            if state["n"] < 3:
                raise ReproError(f"fail {state['n']}")
            return state["n"]

        assert policy.call(
            twice,
            on_retry=lambda attempt, error, delay: events.append(
                (attempt, str(error), delay))) == 3
        assert events == [(1, "fail 1", pytest.approx(0.1)),
                          (2, "fail 2", pytest.approx(0.2))]

    def test_single_attempt_policy_never_retries(self):
        policy = RetryPolicy(max_attempts=1, sleep=lambda s: None)
        with pytest.raises(ReproError):
            policy.call(lambda: (_ for _ in ()).throw(ReproError("x")))

    def test_custom_retryable_filter(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0,
                             retryable=(KeyError,), sleep=lambda s: None)
        state = {"n": 0}

        def keyerror_once():
            state["n"] += 1
            if state["n"] == 1:
                raise KeyError("transient")
            return "ok"

        assert policy.call(keyerror_once) == "ok"

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-1.0)
