"""Access-point behaviour tests."""

import pytest

from repro.geometry.point import Point
from repro.net80211.ap import AccessPoint
from repro.net80211.frames import FrameType, probe_request
from repro.net80211.mac import MacAddress
from repro.net80211.ssid import Ssid

STA = MacAddress.parse("00:1b:63:11:22:33")


def make_ap(**overrides) -> AccessPoint:
    defaults = dict(
        bssid=MacAddress.parse("00:15:6d:44:55:66"),
        ssid=Ssid("CampusNet"),
        channel=6,
        position=Point(100.0, 100.0),
        max_range_m=80.0,
    )
    defaults.update(overrides)
    return AccessPoint(**defaults)


class TestCoverage:
    def test_coverage_disc(self):
        ap = make_ap()
        disc = ap.coverage_disc
        assert disc.center == Point(100.0, 100.0)
        assert disc.radius == 80.0

    def test_covers(self):
        ap = make_ap()
        assert ap.covers(Point(150.0, 100.0))
        assert ap.covers(Point(180.0, 100.0))  # boundary
        assert not ap.covers(Point(181.0, 100.0))

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            make_ap(max_range_m=0.0)


class TestBeaconing:
    def test_beacon_advertises_ssid(self):
        frame = make_ap().make_beacon(timestamp=1.0)
        assert frame.frame_type is FrameType.BEACON
        assert frame.ssid == Ssid("CampusNet")

    def test_hidden_ap_beacons_empty_ssid(self):
        frame = make_ap(hidden=True).make_beacon(timestamp=1.0)
        assert frame.ssid.is_wildcard

    def test_sequence_increments(self):
        ap = make_ap()
        first = ap.make_beacon(1.0).sequence
        second = ap.make_beacon(2.0).sequence
        assert second == (first + 1) & 0xFFF


class TestProbeResponses:
    def test_answers_broadcast_probe(self):
        ap = make_ap()
        request = probe_request(STA, channel=6, timestamp=0.0)
        response = ap.respond_to_probe(request, timestamp=0.01)
        assert response is not None
        assert response.frame_type is FrameType.PROBE_RESPONSE
        assert response.destination == STA
        assert response.bssid == ap.bssid

    def test_answers_directed_probe(self):
        ap = make_ap()
        request = probe_request(STA, channel=6, timestamp=0.0,
                                ssid=Ssid("CampusNet"))
        assert ap.respond_to_probe(request, 0.01) is not None

    def test_ignores_other_ssid(self):
        ap = make_ap()
        request = probe_request(STA, channel=6, timestamp=0.0,
                                ssid=Ssid("someone-else"))
        assert ap.respond_to_probe(request, 0.01) is None

    def test_ignores_wrong_channel(self):
        ap = make_ap(channel=11)
        request = probe_request(STA, channel=6, timestamp=0.0)
        assert ap.respond_to_probe(request, 0.01) is None

    def test_hidden_ap_ignores_broadcast_answers_directed(self):
        ap = make_ap(hidden=True)
        broadcast = probe_request(STA, channel=6, timestamp=0.0)
        directed = probe_request(STA, channel=6, timestamp=0.0,
                                 ssid=Ssid("CampusNet"))
        assert ap.respond_to_probe(broadcast, 0.01) is None
        assert ap.respond_to_probe(directed, 0.01) is not None

    def test_ignores_non_probe_frames(self):
        ap = make_ap()
        not_probe = ap.make_beacon(0.0)
        assert ap.respond_to_probe(not_probe, 0.01) is None
