"""802.11 channel-plan and cross-channel decode-model tests (Fig 9)."""

import pytest

from repro.radio.channels import (
    CHANNELS_80211A,
    CHANNELS_80211BG,
    NON_OVERLAPPING_BG,
    adjacent_channel_rejection_db,
    center_frequency_mhz,
    decode_probability,
    is_a_channel,
    is_bg_channel,
    spectral_overlap_fraction,
)


class TestChannelPlan:
    def test_eleven_bg_channels(self):
        # "Both 802.11b (DSSS) and 802.11g (OFDM) wireless LANs have 11
        # channels."
        assert len(CHANNELS_80211BG) == 11

    def test_twelve_a_channels(self):
        # "support for 802.11a requires 12 cards."
        assert len(CHANNELS_80211A) == 12

    def test_bg_center_frequencies(self):
        assert center_frequency_mhz(1) == 2412.0
        assert center_frequency_mhz(6) == 2437.0
        assert center_frequency_mhz(11) == 2462.0

    def test_a_center_frequency(self):
        assert center_frequency_mhz(36) == 5180.0

    def test_unknown_channel(self):
        with pytest.raises(ValueError):
            center_frequency_mhz(14)

    def test_channel_predicates(self):
        assert is_bg_channel(11) and not is_bg_channel(12)
        assert is_a_channel(36) and not is_a_channel(37)


class TestSpectralOverlap:
    def test_cochannel_full_overlap(self):
        assert spectral_overlap_fraction(6, 6) == 1.0

    def test_non_overlapping_set_is_disjoint(self):
        # "The only three channels that do not interfere with each
        # [other] concurrently are channels 1, 6 and 11."
        for a in NON_OVERLAPPING_BG:
            for b in NON_OVERLAPPING_BG:
                if a != b:
                    assert spectral_overlap_fraction(a, b) == 0.0

    def test_adjacent_channels_overlap(self):
        assert 0.0 < spectral_overlap_fraction(1, 2) < 1.0

    def test_overlap_monotone_in_offset(self):
        overlaps = [spectral_overlap_fraction(1, 1 + off)
                    for off in range(0, 6)]
        assert overlaps == sorted(overlaps, reverse=True)

    def test_symmetry(self):
        assert spectral_overlap_fraction(3, 6) == pytest.approx(
            spectral_overlap_fraction(6, 3))

    def test_a_channels_disjoint(self):
        assert spectral_overlap_fraction(36, 40) == 0.0
        assert spectral_overlap_fraction(36, 36) == 1.0


class TestRejection:
    def test_cochannel_no_penalty(self):
        assert adjacent_channel_rejection_db(6, 6) == 0.0

    def test_disjoint_max_penalty(self):
        assert adjacent_channel_rejection_db(1, 6) == 60.0

    def test_penalty_increases_with_offset(self):
        penalties = [adjacent_channel_rejection_db(1, 1 + off)
                     for off in range(0, 5)]
        assert penalties == sorted(penalties)


class TestDecodeProbability:
    """The Figure 9 behaviour: neighboring channels decode 'few or none'."""

    def test_cochannel_strong_signal_decodes(self):
        assert decode_probability(40.0, 11, 11) == 1.0

    def test_cochannel_weak_signal_fails(self):
        assert decode_probability(0.0, 11, 11) == 0.0

    def test_neighbor_channel_rarely_decodes_even_when_strong(self):
        # A card on channel 10 hears a strong channel-11 transmitter
        # but decodes at most a few percent of frames.
        p = decode_probability(60.0, 11, 10)
        assert 0.0 < p <= 0.06

    def test_two_off_almost_never(self):
        assert decode_probability(60.0, 11, 9) <= 0.01

    def test_three_or_more_off_never(self):
        for rx in (8, 7, 6, 1):
            assert decode_probability(80.0, 11, rx) == 0.0

    def test_figure9_shape(self):
        # Tx on channel 11, receivers on 7..11 with a strong signal:
        # essentially only the co-channel card recognizes packets.
        snr = 45.0
        rates = {rx: decode_probability(snr, 11, rx) for rx in range(7, 12)}
        assert rates[11] == 1.0
        assert all(rates[rx] <= 0.06 for rx in range(7, 11))

    def test_monitoring_369_does_not_cover_band(self):
        # The refuted prior belief: cards on 3/6/9 could capture
        # everything.  A channel-1 transmitter is essentially invisible.
        best = max(decode_probability(45.0, 1, rx) for rx in (3, 6, 9))
        assert best <= 0.06

    def test_snr_ramp(self):
        low = decode_probability(8.0, 6, 6)
        mid = decode_probability(10.0, 6, 6)
        high = decode_probability(12.0, 6, 6)
        assert 0.0 < low < mid < high <= 1.0
