"""Property-based tests on the observation store."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net80211.frames import probe_response
from repro.net80211.mac import MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid
from repro.sniffer.observation import ObservationStore


def rx(ap_index, sta_index, timestamp):
    frame = probe_response(MacAddress(0x100 + ap_index),
                           MacAddress(0x200 + sta_index),
                           channel=6, timestamp=timestamp,
                           ssid=Ssid("n"))
    return ReceivedFrame(frame, -70.0, 20.0, 6, timestamp)


events = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5),   # ap
              st.integers(min_value=0, max_value=3),   # station
              st.floats(min_value=0.0, max_value=600.0,
                        allow_nan=False, allow_infinity=False)),
    min_size=0, max_size=40)


class TestStoreProperties:
    @settings(max_examples=50, deadline=None)
    @given(events)
    def test_windowed_gamma_subset_of_alltime(self, entries):
        store = ObservationStore(window_s=30.0)
        for ap, sta, t in entries:
            store.ingest(rx(ap, sta, t))
        for sta in range(4):
            mobile = MacAddress(0x200 + sta)
            all_time = store.gamma(mobile)
            for _, _, t in entries:
                assert store.gamma(mobile, at_time=t) <= all_time

    @settings(max_examples=50, deadline=None)
    @given(events)
    def test_window_union_covers_alltime(self, entries):
        """Every (mobile, AP) event lands in some window."""
        store = ObservationStore(window_s=30.0)
        for ap, sta, t in entries:
            store.ingest(rx(ap, sta, t))
        per_mobile = {}
        for window in store.windows():
            per_mobile.setdefault(window.mobile, set()).update(
                window.observed)
        assert per_mobile == store.all_observations()

    @settings(max_examples=50, deadline=None)
    @given(events)
    def test_roundtrip_preserves_corpus(self, entries):
        store = ObservationStore(window_s=30.0)
        for ap, sta, t in entries:
            store.ingest(rx(ap, sta, t))
        recovered = ObservationStore.from_dict(store.to_dict())
        assert recovered.corpus() == store.corpus()

    @settings(max_examples=30, deadline=None)
    @given(events)
    def test_ingestion_order_invariant(self, entries):
        forward = ObservationStore(window_s=30.0)
        backward = ObservationStore(window_s=30.0)
        for ap, sta, t in entries:
            forward.ingest(rx(ap, sta, t))
        for ap, sta, t in reversed(entries):
            backward.ingest(rx(ap, sta, t))
        assert forward.all_observations() == backward.all_observations()
        assert (sorted((w.mobile, w.window_start, w.observed)
                       for w in forward.windows())
                == sorted((w.mobile, w.window_start, w.observed)
                          for w in backward.windows()))
