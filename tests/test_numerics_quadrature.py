"""Quadrature tests: exact polynomials, known integrals, scipy cross-check."""

import math

import pytest
from scipy import integrate as scipy_integrate

from repro.numerics.quadrature import (
    adaptive_simpson,
    gauss_legendre,
    integrate,
)


class TestGaussLegendre:
    def test_constant(self):
        assert gauss_legendre(lambda x: 3.0, 0.0, 2.0) == pytest.approx(6.0)

    def test_linear(self):
        assert gauss_legendre(lambda x: x, 0.0, 4.0) == pytest.approx(8.0)

    def test_polynomial_exactness(self):
        # Order-n GL integrates degree 2n-1 polynomials exactly.
        result = gauss_legendre(lambda x: x ** 5, -1.0, 1.0, order=3)
        assert result == pytest.approx(0.0, abs=1e-12)

    def test_degree7_with_order4(self):
        result = gauss_legendre(lambda x: 8 * x ** 7, 0.0, 1.0, order=4)
        assert result == pytest.approx(1.0, rel=1e-12)

    def test_sin_over_period(self):
        result = gauss_legendre(math.sin, 0.0, math.pi, order=32)
        assert result == pytest.approx(2.0, rel=1e-12)

    def test_exp(self):
        result = gauss_legendre(math.exp, 0.0, 1.0, order=16)
        assert result == pytest.approx(math.e - 1.0, rel=1e-12)

    def test_empty_interval(self):
        assert gauss_legendre(math.exp, 2.0, 2.0) == 0.0

    def test_reversed_interval_is_negated(self):
        forward = gauss_legendre(math.exp, 0.0, 1.0)
        backward = gauss_legendre(math.exp, 1.0, 0.0)
        assert backward == pytest.approx(-forward)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            gauss_legendre(math.sin, 0.0, 1.0, order=0)

    def test_matches_scipy_quad(self):
        def integrand(x):
            return math.cos(3.0 * x) * math.exp(-x)

        ours = gauss_legendre(integrand, 0.0, 5.0, order=64)
        reference, _ = scipy_integrate.quad(integrand, 0.0, 5.0)
        assert ours == pytest.approx(reference, rel=1e-10)


class TestAdaptiveSimpson:
    def test_smooth(self):
        result = adaptive_simpson(math.sin, 0.0, math.pi)
        assert result == pytest.approx(2.0, rel=1e-9)

    def test_kinked_integrand(self):
        # |x| has a kink at 0; adaptive refinement must handle it.
        result = adaptive_simpson(abs, -1.0, 1.0)
        assert result == pytest.approx(1.0, rel=1e-8)

    def test_sqrt_singular_derivative(self):
        result = adaptive_simpson(math.sqrt, 0.0, 1.0, tol=1e-12)
        assert result == pytest.approx(2.0 / 3.0, rel=1e-6)

    def test_empty_interval(self):
        assert adaptive_simpson(math.exp, 1.0, 1.0) == 0.0


class TestIntegrate:
    def test_smooth_uses_gauss(self):
        assert integrate(math.exp, 0.0, 1.0) == pytest.approx(
            math.e - 1.0, rel=1e-10)

    def test_piecewise(self):
        def step_like(x):
            return 1.0 if x < 0.3 else 0.25

        reference, _ = scipy_integrate.quad(step_like, 0.0, 1.0,
                                            points=[0.3])
        assert integrate(step_like, 0.0, 1.0) == pytest.approx(
            reference, rel=1e-6)

    def test_matches_scipy_on_theorem2_integrand(self):
        def integrand(y):
            p = (2.0 / math.pi) * (math.acos(y)
                                   - y * math.sqrt(1.0 - y * y))
            return y * p ** 7

        ours = integrate(integrand, 0.0, 1.0)
        reference, _ = scipy_integrate.quad(integrand, 0.0, 1.0)
        assert ours == pytest.approx(reference, rel=1e-9)
