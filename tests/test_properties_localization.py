"""Cross-cutting property-based tests on the localization pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.point import Point
from repro.knowledge.apdb import ApDatabase, ApRecord
from repro.localization.centroid import CentroidLocalizer
from repro.localization.mloc import MLoc
from repro.localization.radius_lp import RadiusEstimator
from repro.net80211.mac import MacAddress
from repro.net80211.ssid import Ssid

coord = st.floats(min_value=0.0, max_value=300.0,
                  allow_nan=False, allow_infinity=False)
radius = st.floats(min_value=20.0, max_value=120.0,
                   allow_nan=False, allow_infinity=False)


def db_from(aps):
    return ApDatabase(
        ApRecord(bssid=MacAddress(i + 1), ssid=Ssid(f"a{i}"),
                 location=Point(x, y), max_range_m=r)
        for i, (x, y, r) in enumerate(aps)
    )


def covering_aps(draw, truth, count):
    """APs whose discs are guaranteed to contain ``truth``."""
    aps = []
    for _ in range(count):
        x = draw(coord)
        y = draw(coord)
        needed = Point(x, y).distance_to(truth)
        r = needed + draw(st.floats(min_value=5.0, max_value=80.0))
        aps.append((x, y, r))
    return aps


class TestMLocProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_translation_equivariance(self, data):
        """Shifting the whole world shifts the estimate identically."""
        truth = Point(data.draw(coord), data.draw(coord))
        count = data.draw(st.integers(min_value=2, max_value=5))
        aps = covering_aps(data.draw, truth, count)
        dx = data.draw(st.floats(min_value=-500.0, max_value=500.0))
        dy = data.draw(st.floats(min_value=-500.0, max_value=500.0))

        base = MLoc(db_from(aps)).locate(
            db_from(aps).bssids)
        shifted_db = db_from([(x + dx, y + dy, r) for x, y, r in aps])
        shifted = MLoc(shifted_db).locate(shifted_db.bssids)
        assert shifted.position.x == pytest.approx(base.position.x + dx,
                                                   abs=1e-6)
        assert shifted.position.y == pytest.approx(base.position.y + dy,
                                                   abs=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_estimate_within_max_radius_of_truth(self, data):
        """With exact covering knowledge the error is bounded by the
        largest disc radius (estimate and truth share the region)."""
        truth = Point(data.draw(coord), data.draw(coord))
        count = data.draw(st.integers(min_value=1, max_value=5))
        aps = covering_aps(data.draw, truth, count)
        database = db_from(aps)
        estimate = MLoc(database).locate(database.bssids)
        max_r = max(r for _, _, r in aps)
        assert estimate.error_to(truth) <= 2.0 * max_r + 1e-6

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_area_shrinks_with_more_aps(self, data):
        truth = Point(150.0, 150.0)
        aps = covering_aps(data.draw, truth, 4)
        database_small = db_from(aps[:2])
        database_large = db_from(aps)
        small = MLoc(database_small).locate(database_small.bssids)
        large = MLoc(database_large).locate(database_large.bssids)
        assert large.area_m2 <= small.area_m2 + 1e-6


class TestCentroidProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_centroid_inside_bounding_box_of_aps(self, data):
        count = data.draw(st.integers(min_value=1, max_value=6))
        aps = [(data.draw(coord), data.draw(coord), data.draw(radius))
               for _ in range(count)]
        database = db_from(aps)
        estimate = CentroidLocalizer(database).locate(database.bssids)
        xs = [x for x, _, _ in aps]
        ys = [y for _, y, _ in aps]
        assert min(xs) - 1e-9 <= estimate.position.x <= max(xs) + 1e-9
        assert min(ys) - 1e-9 <= estimate.position.y <= max(ys) + 1e-9


class TestRadiusLpProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_solution_satisfies_constraints(self, seed):
        """LP output respects bounds and co-observation lower bounds."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 8))
        locations = {MacAddress(i + 1): Point(*(rng.uniform(0, 300, 2)))
                     for i in range(n)}
        macs = list(locations)
        # Random observations of 2-3 APs each.
        observations = []
        for _ in range(6):
            size = int(rng.integers(2, 4))
            chosen = rng.choice(len(macs), size=min(size, n),
                                replace=False)
            observations.append({macs[i] for i in chosen})
        r_max = 120.0
        estimator = RadiusEstimator(locations, r_max=r_max, r_min=1.0)
        estimate = estimator.fit(observations)
        for mac in macs:
            assert 1.0 - 1e-6 <= estimate.radii[mac] <= r_max + 1e-6
        # Co-observed pairs meet their lower bounds (clamped at 2r_max).
        for observed in observations:
            members = sorted(observed)
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    a, b = members[i], members[j]
                    distance = locations[a].distance_to(locations[b])
                    bound = min(distance, 2.0 * r_max)
                    assert (estimate.radii[a] + estimate.radii[b]
                            >= bound - 1e-5)
