"""Theorem 1 link-budget tests."""

import math

import pytest

from repro.radio.link_budget import (
    LinkBudget,
    Transmitter,
    coverage_radius_m,
    free_space_path_loss_db,
    received_power_dbm,
    receiver_sensitivity_dbm,
    theorem1_constant_c,
)
from repro.sniffer.receiver import build_marauder_chain, build_src_chain


class TestPathLoss:
    def test_fspl_at_one_meter_2_4ghz(self):
        # 20 log10(4π/λ) at 2.437 GHz ≈ 40.2 dB.
        loss = free_space_path_loss_db(1.0, 2.437e9)
        assert loss == pytest.approx(40.2, abs=0.1)

    def test_doubling_distance_adds_6db(self):
        near = free_space_path_loss_db(100.0, 2.437e9)
        far = free_space_path_loss_db(200.0, 2.437e9)
        assert far - near == pytest.approx(20 * math.log10(2), abs=1e-9)

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            free_space_path_loss_db(0.0, 2.4e9)


class TestReceivedPower:
    def test_equation_10(self):
        tx = Transmitter(power_dbm=15.0, antenna_gain_dbi=2.0)
        power = received_power_dbm(tx, receiver_gain_dbi=15.0,
                                   distance_m=100.0)
        expected = (15.0 + 2.0 + 15.0
                    - free_space_path_loss_db(100.0, tx.frequency_hz))
        assert power == pytest.approx(expected)

    def test_eirp(self):
        assert Transmitter(20.0, 3.0).eirp_dbm == 23.0


class TestSensitivity:
    def test_equation_11(self):
        # -174 + 4 + 10 + 10log(22e6) ≈ -86.6 dBm.
        value = receiver_sensitivity_dbm(4.0, 10.0, 22e6)
        assert value == pytest.approx(-86.58, abs=0.01)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            receiver_sensitivity_dbm(4.0, 10.0, 0.0)


class TestTheorem1:
    def test_coverage_radius_consistency(self):
        """At the Theorem 1 radius, received power equals sensitivity."""
        tx = Transmitter(power_dbm=15.0, antenna_gain_dbi=0.0)
        radius = coverage_radius_m(receiver_gain_dbi=15.0,
                                   noise_figure_db=1.5, snr_min_db=10.0,
                                   transmitter=tx, bandwidth_hz=22e6)
        power = received_power_dbm(tx, 15.0, radius)
        sensitivity = receiver_sensitivity_dbm(1.5, 10.0, 22e6)
        assert power == pytest.approx(sensitivity, abs=1e-9)

    def test_6db_gain_doubles_radius(self):
        tx = Transmitter(power_dbm=15.0)
        base = coverage_radius_m(9.0, 4.0, 10.0, tx, 22e6)
        boosted = coverage_radius_m(15.0, 4.0, 10.0, tx, 22e6)
        assert boosted / base == pytest.approx(10 ** (6.0 / 20.0),
                                               rel=1e-9)

    def test_lower_nf_extends_radius(self):
        tx = Transmitter(power_dbm=15.0)
        assert (coverage_radius_m(15.0, 1.5, 10.0, tx, 22e6)
                > coverage_radius_m(15.0, 4.0, 10.0, tx, 22e6))

    def test_constant_c_formula(self):
        tx = Transmitter(power_dbm=15.0, antenna_gain_dbi=2.0,
                         frequency_hz=2.437e9)
        c = theorem1_constant_c(tx, 22e6)
        wavelength = tx.wavelength_m
        expected = (15.0 + 2.0 - 20 * math.log10(4 * math.pi / wavelength)
                    - 10 * math.log10(22e6) + 174.0)
        assert c == pytest.approx(expected)


class TestLinkBudget:
    def test_chain_ordering(self):
        # The full LNA chain must out-range the bare SRC card.
        tx = Transmitter(power_dbm=15.0)
        src = LinkBudget(tx, build_src_chain())
        lna = LinkBudget(tx, build_marauder_chain())
        assert lna.coverage_radius_m() > src.coverage_radius_m()

    def test_can_receive_at_radius_boundary(self):
        budget = LinkBudget(Transmitter(power_dbm=15.0),
                            build_marauder_chain())
        radius = budget.coverage_radius_m()
        assert budget.can_receive(radius * 0.99)
        assert not budget.can_receive(radius * 1.01)

    def test_link_margin_zero_at_radius(self):
        budget = LinkBudget(Transmitter(power_dbm=15.0),
                            build_src_chain())
        radius = budget.coverage_radius_m()
        assert budget.link_margin_db(radius) == pytest.approx(0.0,
                                                              abs=1e-9)

    def test_snr_decreases_with_distance(self):
        budget = LinkBudget(Transmitter(power_dbm=15.0),
                            build_src_chain())
        assert budget.snr_db(100.0) > budget.snr_db(500.0)
