"""Defense-policy unit tests: pseudonyms, silence, mix zones, hygiene."""

import numpy as np
import pytest

from repro.defenses.mixzone import MixZone, MixZoneMap
from repro.defenses.probe_hygiene import ProbeHygiene
from repro.defenses.pseudonym import PseudonymPolicy, RotationTrigger
from repro.defenses.silent import SilentPeriodPolicy
from repro.geometry.point import Point
from repro.net80211.frames import probe_request
from repro.net80211.mac import MacAddress
from repro.net80211.ssid import Ssid
from repro.net80211.station import PROFILES, ScanProfile


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestPseudonymPolicy:
    def test_periodic_rotation(self, rng):
        policy = PseudonymPolicy(interval_s=60.0)
        assert policy.maybe_rotate(30.0, rng) is None
        fresh = policy.maybe_rotate(61.0, rng)
        assert fresh is not None
        assert fresh.is_locally_administered
        assert policy.rotations == 1

    def test_periodic_respects_interval_after_rotation(self, rng):
        policy = PseudonymPolicy(interval_s=60.0)
        policy.maybe_rotate(61.0, rng)
        assert policy.maybe_rotate(90.0, rng) is None
        assert policy.maybe_rotate(125.0, rng) is not None

    def test_per_association_trigger(self, rng):
        policy = PseudonymPolicy(trigger=RotationTrigger.PER_ASSOCIATION)
        assert policy.maybe_rotate(1000.0, rng) is None
        assert policy.on_association(rng) is not None

    def test_never_trigger(self, rng):
        policy = PseudonymPolicy(trigger=RotationTrigger.NEVER)
        assert policy.maybe_rotate(1e9, rng) is None
        assert policy.on_association(rng) is None

    def test_fresh_macs_are_distinct(self, rng):
        policy = PseudonymPolicy(interval_s=1.0)
        macs = {policy.maybe_rotate(float(t), rng) for t in range(1, 20)}
        assert None not in macs
        assert len(macs) == 19

    def test_validation(self):
        with pytest.raises(ValueError):
            PseudonymPolicy(interval_s=0.0)


class TestSilentPeriodPolicy:
    def test_silence_window(self, rng):
        policy = SilentPeriodPolicy(min_s=10.0, max_s=10.0)
        duration = policy.begin(100.0, rng)
        assert duration == 10.0
        assert policy.is_silent(105.0)
        assert not policy.is_silent(110.5)

    def test_duration_in_bounds(self, rng):
        policy = SilentPeriodPolicy(min_s=5.0, max_s=20.0)
        for _ in range(50):
            assert 5.0 <= policy.begin(0.0, rng) <= 20.0

    def test_not_silent_initially(self):
        assert not SilentPeriodPolicy().is_silent(0.0)

    def test_counts_periods(self, rng):
        policy = SilentPeriodPolicy()
        policy.begin(0.0, rng)
        policy.begin(100.0, rng)
        assert policy.periods_served == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SilentPeriodPolicy(min_s=30.0, max_s=10.0)
        with pytest.raises(ValueError):
            SilentPeriodPolicy(min_s=-1.0, max_s=10.0)


class TestMixZones:
    def test_zone_membership(self):
        zone = MixZone(Point(100.0, 100.0), radius_m=30.0)
        assert zone.contains(Point(110.0, 100.0))
        assert not zone.contains(Point(200.0, 100.0))

    def test_map_lookup(self):
        zones = MixZoneMap([MixZone(Point(0.0, 0.0), 10.0, name="gate"),
                            MixZone(Point(100.0, 0.0), 10.0, name="quad")])
        assert zones.zone_at(Point(5.0, 0.0)).name == "gate"
        assert zones.zone_at(Point(50.0, 0.0)) is None
        assert zones.in_zone(Point(99.0, 0.0))

    def test_coverage_fraction(self):
        # One zone of radius 25 in a 100x100 area: pi*625/10000 ~ 0.196.
        zones = MixZoneMap([MixZone(Point(50.0, 50.0), 25.0)])
        fraction = zones.coverage_fraction(100.0, 100.0, grid=80)
        assert fraction == pytest.approx(0.196, abs=0.02)

    def test_add_zone(self):
        zones = MixZoneMap()
        zones.add_zone(MixZone(Point(0, 0), 5.0))
        assert len(zones.zones) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MixZone(Point(0, 0), radius_m=0.0)
        with pytest.raises(ValueError):
            MixZoneMap().coverage_fraction(10.0, 10.0, grid=1)


class TestProbeHygiene:
    def test_profile_loses_directed_probes(self):
        hygiene = ProbeHygiene()
        profile = hygiene.apply_to_profile(PROFILES["aggressive"])
        assert not profile.directed_probes
        assert profile.probes_actively  # broadcast scanning survives

    def test_interval_floor(self):
        hygiene = ProbeHygiene(broadcast_only_interval_s=120.0)
        profile = hygiene.apply_to_profile(PROFILES["aggressive"])
        assert profile.scan_interval_s == 120.0
        # Never *shortens* an already-slow profile.
        slow = ScanProfile("slow", scan_interval_s=600.0)
        assert hygiene.apply_to_profile(slow).scan_interval_s == 600.0

    def test_filter_burst(self):
        mac = MacAddress.parse("02:00:00:00:00:01")
        burst = [
            probe_request(mac, 6, 0.0),
            probe_request(mac, 6, 0.0, ssid=Ssid("home")),
            probe_request(mac, 11, 0.0, ssid=Ssid("work")),
        ]
        kept = ProbeHygiene().filter_burst(burst)
        assert len(kept) == 1
        assert kept[0].ssid.is_wildcard

    def test_disabled_filter_passes_through(self):
        mac = MacAddress.parse("02:00:00:00:00:01")
        burst = [probe_request(mac, 6, 0.0, ssid=Ssid("home"))]
        hygiene = ProbeHygiene(suppress_directed=False)
        assert hygiene.filter_burst(burst) == burst
