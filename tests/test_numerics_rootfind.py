"""Bisection tests."""

import math

import pytest

from repro.numerics.rootfind import bisect


class TestBisect:
    def test_linear_root(self):
        assert bisect(lambda x: x - 3.0, 0.0, 10.0) == pytest.approx(3.0)

    def test_quadratic_root(self):
        root = bisect(lambda x: x * x - 2.0, 0.0, 2.0)
        assert root == pytest.approx(math.sqrt(2.0), abs=1e-10)

    def test_root_at_lower_bracket(self):
        assert bisect(lambda x: x, 0.0, 1.0) == 0.0

    def test_root_at_upper_bracket(self):
        assert bisect(lambda x: x - 1.0, 0.0, 1.0) == 1.0

    def test_decreasing_function(self):
        root = bisect(lambda x: 5.0 - x, 0.0, 10.0)
        assert root == pytest.approx(5.0)

    def test_no_sign_change_raises(self):
        with pytest.raises(ValueError, match="no sign change"):
            bisect(lambda x: x * x + 1.0, -1.0, 1.0)

    def test_transcendental(self):
        # cos(x) = x has its root near 0.739085.
        root = bisect(lambda x: math.cos(x) - x, 0.0, 1.0)
        assert root == pytest.approx(0.7390851332151607, abs=1e-9)

    def test_inverts_theorem2_curve(self):
        # Find k where CA(k) drops below 0.5 (a real usage pattern).
        from repro.theory.theorem2 import expected_intersected_area

        def objective(k):
            return expected_intersected_area(max(1, int(round(k)))) - 0.5

        k_star = bisect(objective, 1.0, 30.0, tol=0.5)
        k_int = int(round(k_star))
        assert expected_intersected_area(k_int + 1) < 0.5
        assert expected_intersected_area(max(1, k_int - 1)) > 0.5
