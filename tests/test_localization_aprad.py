"""AP-Rad algorithm tests."""

import pytest

from repro.geometry.point import Point
from repro.knowledge.apdb import ApDatabase
from repro.localization.aprad import APRad
from repro.localization.mloc import MLoc
from repro.net80211.mac import MacAddress

from tests.helpers import make_record


@pytest.fixture
def location_db(square_db):
    return square_db.without_ranges()


class TestLifecycle:
    def test_locate_before_fit_raises(self, location_db):
        aprad = APRad(location_db, r_max=100.0)
        with pytest.raises(RuntimeError, match="before fit"):
            aprad.locate(location_db.bssids)

    def test_fitted_database_has_radii(self, location_db):
        aprad = APRad(location_db, r_max=100.0)
        aprad.fit([set(location_db.bssids)])
        fitted = aprad.fitted_database
        assert all(r.max_range_m is not None for r in fitted)

    def test_estimated_radii_accessor(self, location_db):
        aprad = APRad(location_db, r_max=100.0)
        aprad.fit([set(location_db.bssids)])
        radii = aprad.estimated_radii
        assert set(radii) == set(location_db.bssids)
        assert all(0.0 < r <= 100.0 for r in radii.values())


class TestLocalization:
    def test_locates_square_center(self, location_db):
        aprad = APRad(location_db, r_max=100.0)
        aprad.fit([set(location_db.bssids)])
        estimate = aprad.locate(location_db.bssids)
        assert estimate is not None
        assert estimate.algorithm == "ap-rad"
        # Symmetric problem: estimate lands near the center.
        assert estimate.position.distance_to(Point(50.0, 50.0)) < 15.0

    def test_fit_and_locate_all(self, location_db):
        aprad = APRad(location_db, r_max=100.0)
        observations = [set(location_db.bssids),
                        set(location_db.bssids[:2])]
        estimates = aprad.fit_and_locate_all(observations)
        assert len(estimates) == 2
        assert all(e is not None for e in estimates)

    def test_unknown_gamma_returns_none(self, location_db):
        aprad = APRad(location_db, r_max=100.0)
        aprad.fit([set(location_db.bssids)])
        assert aprad.locate({MacAddress(0xDEAD)}) is None

    def test_comparable_to_mloc_on_good_evidence(self, square_db):
        """AP-Rad with rich co-observation evidence approaches M-Loc."""
        import numpy as np

        rng = np.random.default_rng(8)
        corpus = []
        for _ in range(300):
            p = Point(*(rng.uniform(0, 100, 2)))
            gamma = square_db.observable_from(p)
            if gamma:
                corpus.append(gamma)
        aprad = APRad(square_db.without_ranges(), r_max=100.0)
        aprad.fit(corpus)
        truth = Point(50.0, 50.0)
        gamma = square_db.observable_from(truth)
        aprad_error = aprad.locate(gamma).error_to(truth)
        mloc_error = MLoc(square_db).locate(gamma).error_to(truth)
        assert aprad_error <= mloc_error + 20.0
