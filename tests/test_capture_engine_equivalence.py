"""Cross-format engine equivalence: JSONL vs columnar, record vs batch.

The acceptance bar for the columnar store is byte-identical engine
output — same checkpoints (minus volatile metrics), same estimates —
whichever codec the capture sits in and whichever replay seam feeds
the engine.
"""

import json

import pytest

from repro.capture import convert_capture, make_capture_writer
from repro.engine import StreamingEngine, make_sink
from repro.geometry.point import Point
from repro.knowledge.apdb import ApDatabase, ApRecord
from repro.localization import MLoc
from repro.net80211.frames import (
    Dot11Frame,
    FrameType,
    beacon,
    probe_request,
    probe_response,
)
from repro.net80211.mac import BROADCAST_MAC, MacAddress
from repro.net80211.medium import ReceivedFrame
from repro.net80211.ssid import Ssid
from repro.service.core import ShardedEngine
from repro.sniffer.replay import iter_capture, iter_capture_batches

GRID = 4


def ap_mac(index):
    return MacAddress(0x001B63000000 + index)


def mobile_mac(index):
    return MacAddress(0x020000000000 + index)


def build_database():
    return ApDatabase(
        ApRecord(bssid=ap_mac(i), ssid=Ssid("campus"),
                 location=Point((i % GRID) * 80.0, (i // GRID) * 80.0),
                 max_range_m=120.0)
        for i in range(GRID * GRID))


def generate_records(count=600):
    records = []
    for i in range(count):
        ts = i * 0.05
        m = mobile_mac(i % 7)
        ap = ap_mac((i // 3) % (GRID * GRID))
        mix = i % 5
        if mix == 0:
            frame = probe_request(m, channel=6, timestamp=ts,
                                  ssid=Ssid("campus"))
        elif mix in (1, 2):
            frame = probe_response(ap, m, channel=6, timestamp=ts,
                                   ssid=Ssid("campus"))
        elif mix == 3:
            frame = Dot11Frame(frame_type=FrameType.DATA, source=m,
                               destination=ap, channel=6, timestamp=ts,
                               ssid=Ssid(""), bssid=ap)
        else:
            frame = beacon(ap, channel=6, timestamp=ts,
                           ssid=Ssid("campus"))
        records.append(ReceivedFrame(frame, -60.0 - (i % 15), 20.0, 6, ts))
    return records


def write_capture(path, fmt, records, **options):
    with make_capture_writer(path, format=fmt, **options) as writer:
        for record in records:
            writer.write(record)


def stripped_checkpoint(engine):
    """Engine checkpoint minus volatile timing/metrics payloads."""
    state = engine.checkpoint()
    state.pop("metrics", None)
    state.pop("stage_seconds", None)
    return json.dumps(state, sort_keys=True, default=str)


def fresh_engine():
    return StreamingEngine(MLoc(build_database()), window_s=120.0,
                           batch_size=8, sinks=[make_sink("latest")])


def run_records(path):
    engine = fresh_engine()
    engine.run(iter_capture(path))
    return engine


def run_batched(path, batch_records=None):
    engine = fresh_engine()
    engine.run_batches(iter_capture_batches(path,
                                            batch_records=batch_records))
    return engine


@pytest.fixture(scope="module")
def captures(tmp_path_factory):
    root = tmp_path_factory.mktemp("captures")
    records = generate_records()
    jsonl = root / "capture.jsonl"
    columnar = root / "capture.cap"
    write_capture(jsonl, "jsonl", records)
    write_capture(columnar, "columnar", records, block_records=64)
    return {"jsonl": jsonl, "columnar": columnar, "records": records}


class TestCheckpointEquivalence:
    def test_jsonl_vs_columnar_record_path(self, captures):
        a = run_records(captures["jsonl"])
        b = run_records(captures["columnar"])
        assert stripped_checkpoint(a) == stripped_checkpoint(b)

    def test_record_vs_batch_path(self, captures):
        a = run_records(captures["columnar"])
        b = run_batched(captures["columnar"])
        assert stripped_checkpoint(a) == stripped_checkpoint(b)

    def test_batch_path_both_formats(self, captures):
        a = run_batched(captures["jsonl"])
        b = run_batched(captures["columnar"])
        assert stripped_checkpoint(a) == stripped_checkpoint(b)

    def test_batch_size_does_not_change_output(self, captures):
        a = run_batched(captures["columnar"], batch_records=17)
        b = run_batched(captures["columnar"], batch_records=256)
        assert stripped_checkpoint(a) == stripped_checkpoint(b)

    def test_converted_capture_equivalent(self, captures, tmp_path):
        converted = tmp_path / "converted.cap"
        convert_capture(captures["jsonl"], converted, block_records=50)
        a = run_records(captures["jsonl"])
        b = run_batched(converted)
        assert stripped_checkpoint(a) == stripped_checkpoint(b)

    def test_estimates_and_stats_match(self, captures):
        a = run_records(captures["jsonl"])
        b = run_batched(captures["columnar"])
        sa, sb = a.stats(), b.stats()
        assert sa.frames_ingested == sb.frames_ingested
        assert sa.probe_requests == sb.probe_requests
        assert sa.evidence_events == sb.evidence_events
        assert sa.estimates_emitted == sb.estimates_emitted
        fixes_a = a.sinks[0].fixes
        fixes_b = b.sinks[0].fixes
        assert set(fixes_a) == set(fixes_b)
        for mobile, (ts, est) in fixes_a.items():
            ts_b, est_b = fixes_b[mobile]
            assert ts == ts_b
            assert est.position == est_b.position


class TestShardedEngine:
    def _sharded(self):
        return ShardedEngine(lambda: MLoc(build_database()), shards=3)

    def test_batch_ingest_matches_record_ingest(self, captures):
        a, b = self._sharded(), self._sharded()
        try:
            for received in iter_capture(captures["columnar"]):
                a.ingest(received)
            stats_a = a.drain()
            b.ingest_batches(iter_capture_batches(captures["columnar"]))
            stats_b = b.drain()
            assert stats_a.frames_ingested == stats_b.frames_ingested
            assert stats_a.estimates_emitted == stats_b.estimates_emitted
            assert a.snapshot().keys() == b.snapshot().keys()
        finally:
            a.stop()
            b.stop()
