"""Point primitive tests, including hypothesis properties."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.point import Point, mean_point

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


class TestPointBasics:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_squared_distance(self):
        assert Point(0, 0).squared_distance_to(Point(3, 4)) == pytest.approx(25.0)

    def test_add_sub(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)

    def test_scalar_mul_div(self):
        assert Point(1, 2) * 3 == Point(3, 6)
        assert 3 * Point(1, 2) == Point(3, 6)
        assert Point(3, 6) / 3 == Point(1, 2)

    def test_iter_unpack(self):
        x, y = Point(7, 8)
        assert (x, y) == (7, 8)

    def test_norm_angle(self):
        p = Point(0, 2)
        assert p.norm() == pytest.approx(2.0)
        assert p.angle() == pytest.approx(math.pi / 2)

    def test_rotated_quarter_turn(self):
        rotated = Point(1, 0).rotated(math.pi / 2)
        assert rotated.x == pytest.approx(0.0, abs=1e-12)
        assert rotated.y == pytest.approx(1.0)

    def test_as_tuple(self):
        assert Point(1.5, -2.5).as_tuple() == (1.5, -2.5)

    def test_is_close(self):
        assert Point(1, 1).is_close(Point(1 + 1e-10, 1 - 1e-10))
        assert not Point(1, 1).is_close(Point(1.1, 1))

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 5


class TestMeanPoint:
    def test_single(self):
        assert mean_point([Point(3, 4)]) == Point(3, 4)

    def test_square_center(self):
        corners = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        assert mean_point(corners) == Point(1, 1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_point([])

    def test_generator_input(self):
        assert mean_point(Point(i, i) for i in range(3)) == Point(1, 1)


class TestPointProperties:
    @given(finite, finite, finite, finite)
    def test_distance_symmetry(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(finite, finite, finite, finite, finite, finite)
    def test_triangle_inequality(self, ax, ay, bx, by, cx, cy):
        a, b, c = Point(ax, ay), Point(bx, by), Point(cx, cy)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(finite, finite)
    def test_distance_to_self_is_zero(self, x, y):
        assert Point(x, y).distance_to(Point(x, y)) == 0.0

    @given(finite, finite, st.floats(min_value=-math.pi, max_value=math.pi))
    def test_rotation_preserves_norm(self, x, y, angle):
        p = Point(x, y)
        assert p.rotated(angle).norm() == pytest.approx(
            p.norm(), rel=1e-9, abs=1e-9)
