"""Propagation-model tests."""

import pytest

from repro.geometry.point import Point
from repro.radio.link_budget import free_space_path_loss_db
from repro.radio.propagation import (
    FreeSpaceModel,
    LogDistanceModel,
    ObstructedModel,
)

FREQ = 2.437e9


class TestFreeSpace:
    def test_matches_link_budget_formula(self):
        model = FreeSpaceModel()
        loss = model.path_loss_db(Point(0, 0), Point(300, 400), FREQ)
        assert loss == pytest.approx(free_space_path_loss_db(500.0, FREQ))

    def test_colocated_clamped_to_one_meter(self):
        model = FreeSpaceModel()
        loss = model.path_loss_db(Point(0, 0), Point(0, 0), FREQ)
        assert loss == pytest.approx(free_space_path_loss_db(1.0, FREQ))

    def test_symmetric(self):
        model = FreeSpaceModel()
        a, b = Point(0, 0), Point(123, -45)
        assert model.path_loss_db(a, b, FREQ) == pytest.approx(
            model.path_loss_db(b, a, FREQ))


class TestLogDistance:
    def test_exponent_two_equals_free_space(self):
        log_model = LogDistanceModel(exponent=2.0)
        free = FreeSpaceModel()
        a, b = Point(0, 0), Point(200, 0)
        assert log_model.path_loss_db(a, b, FREQ) == pytest.approx(
            free.path_loss_db(a, b, FREQ), abs=1e-9)

    def test_urban_exponent_lossier(self):
        urban = LogDistanceModel(exponent=3.2)
        free = FreeSpaceModel()
        a, b = Point(0, 0), Point(500, 0)
        assert urban.path_loss_db(a, b, FREQ) > free.path_loss_db(a, b, FREQ)

    def test_shadowing_deterministic(self):
        model = LogDistanceModel(exponent=3.0, shadowing_sigma_db=6.0,
                                 seed=5)
        a, b = Point(10, 20), Point(300, 40)
        first = model.path_loss_db(a, b, FREQ)
        second = model.path_loss_db(a, b, FREQ)
        assert first == second

    def test_shadowing_reciprocal(self):
        # The channel draw must not depend on link direction.
        model = LogDistanceModel(exponent=3.0, shadowing_sigma_db=6.0)
        a, b = Point(10, 20), Point(300, 40)
        assert model.path_loss_db(a, b, FREQ) == pytest.approx(
            model.path_loss_db(b, a, FREQ))

    def test_shadowing_varies_between_links(self):
        model = LogDistanceModel(exponent=3.0, shadowing_sigma_db=6.0)
        a = Point(0, 0)
        losses = {round(model.path_loss_db(a, Point(100.0, float(y)), FREQ)
                        - model.path_loss_db(a, Point(100.0, 0.0), FREQ), 6)
                  for y in (10, 20, 30, 40)}
        assert len(losses) > 1  # different links draw different shadows

    def test_seed_changes_environment(self):
        a, b = Point(0, 0), Point(100, 0)
        loss_1 = LogDistanceModel(exponent=3.0, shadowing_sigma_db=8.0,
                                  seed=1).path_loss_db(a, b, FREQ)
        loss_2 = LogDistanceModel(exponent=3.0, shadowing_sigma_db=8.0,
                                  seed=2).path_loss_db(a, b, FREQ)
        assert loss_1 != loss_2

    def test_validation(self):
        with pytest.raises(ValueError):
            LogDistanceModel(exponent=0.0)
        with pytest.raises(ValueError):
            LogDistanceModel(reference_distance_m=0.0)
        with pytest.raises(ValueError):
            LogDistanceModel(shadowing_sigma_db=-1.0)


class TestObstructed:
    def test_adds_obstruction(self):
        base = FreeSpaceModel()
        model = ObstructedModel(base, obstruction_db=lambda tx, rx: 12.0)
        a, b = Point(0, 0), Point(100, 0)
        assert model.path_loss_db(a, b, FREQ) == pytest.approx(
            base.path_loss_db(a, b, FREQ) + 12.0)

    def test_zero_obstruction_is_transparent(self):
        base = FreeSpaceModel()
        model = ObstructedModel(base, obstruction_db=lambda tx, rx: 0.0)
        a, b = Point(0, 0), Point(100, 0)
        assert model.path_loss_db(a, b, FREQ) == pytest.approx(
            base.path_loss_db(a, b, FREQ))

    def test_negative_obstruction_rejected(self):
        model = ObstructedModel(FreeSpaceModel(),
                                obstruction_db=lambda tx, rx: -5.0)
        with pytest.raises(ValueError):
            model.path_loss_db(Point(0, 0), Point(1, 0), FREQ)

    def test_with_terrain(self):
        from repro.sim.terrain import Hill, Terrain

        terrain = Terrain([Hill(Point(50, 0), 10.0, 20.0)])
        model = ObstructedModel(FreeSpaceModel(), terrain.obstruction_db)
        blocked = model.path_loss_db(Point(0, 0), Point(100, 0), FREQ)
        clear = model.path_loss_db(Point(0, 50), Point(100, 50), FREQ)
        assert blocked == pytest.approx(clear + 20.0, abs=0.5)
